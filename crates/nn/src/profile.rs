//! Model profiling: parameter and MAC counting for Table I.

use crate::models::Backbone;
use serde::{Deserialize, Serialize};

/// A cost summary of a backbone (one row of the paper's Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Backbone name.
    pub name: String,
    /// Total trainable parameters.
    pub params: u64,
    /// Multiply-accumulate operations for one forward pass at the profiled
    /// input resolution.
    pub macs: u64,
    /// Backbone feature dimensionality d_a.
    pub feature_dim: usize,
    /// Input resolution used for the MAC count.
    pub input_hw: (usize, usize),
}

impl ModelProfile {
    /// Parameters in millions.
    pub fn params_millions(&self) -> f64 {
        self.params as f64 / 1e6
    }

    /// MACs in millions.
    pub fn macs_millions(&self) -> f64 {
        self.macs as f64 / 1e6
    }

    /// Model size in megabytes when parameters are stored as `f32`.
    pub fn size_mb_fp32(&self) -> f64 {
        self.params as f64 * 4.0 / 1e6
    }

    /// Model size in megabytes when parameters are stored as `i8`.
    pub fn size_mb_int8(&self) -> f64 {
        self.params as f64 / 1e6
    }
}

/// Profiles a backbone at the given input resolution.
pub fn profile_backbone(backbone: &mut Backbone, height: usize, width: usize) -> ModelProfile {
    ModelProfile {
        name: backbone.name.clone(),
        params: backbone.param_count(),
        macs: backbone.macs(height, width),
        feature_dim: backbone.feature_dim,
        input_hw: (height, width),
    }
}

/// Profiles a backbone together with an attached FCR projection layer (adds
/// `d_a * d_p` parameters and MACs), matching how the paper reports model
/// cost.
pub fn profile_with_fcr(
    backbone: &mut Backbone,
    projection_dim: usize,
    height: usize,
    width: usize,
) -> ModelProfile {
    let mut profile = profile_backbone(backbone, height, width);
    let fcr = (backbone.feature_dim * projection_dim) as u64;
    profile.params += fcr;
    profile.macs += fcr;
    profile
}

/// Per-layer MAC breakdown, used by the GAP9 deployment model.
pub fn per_layer_macs(backbone: &Backbone, height: usize, width: usize) -> Vec<(String, u64)> {
    backbone
        .net
        .macs_per_layer(&[backbone.in_channels, height, width])
        .unwrap_or_default()
}

/// Deployment-oriented description of one top-level layer (or block) of a
/// backbone: its cost and the activation shapes it consumes and produces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSummary {
    /// Layer display name.
    pub name: String,
    /// MACs for one sample.
    pub macs: u64,
    /// Weight parameters that must be resident to execute the layer.
    pub weight_params: u64,
    /// Batch-less input dims (e.g. `[channels, h, w]`).
    pub input_dims: Vec<usize>,
    /// Batch-less output dims.
    pub output_dims: Vec<usize>,
}

impl LayerSummary {
    /// Number of input activation elements.
    pub fn input_elements(&self) -> u64 {
        self.input_dims.iter().product::<usize>() as u64
    }

    /// Number of output activation elements.
    pub fn output_elements(&self) -> u64 {
        self.output_dims.iter().product::<usize>() as u64
    }

    /// Spatial extent of the output (product of trailing two dims for
    /// feature maps, 1 for flat activations); the unit of spatial
    /// parallelisation on a multi-core cluster.
    pub fn output_spatial(&self) -> u64 {
        if self.output_dims.len() >= 3 {
            let n = self.output_dims.len();
            (self.output_dims[n - 2] * self.output_dims[n - 1]) as u64
        } else {
            1
        }
    }
}

/// Summarises every top-level layer of a backbone at the given input
/// resolution — the input to the GAP9 tiling and latency model.
pub fn layer_summaries(backbone: &Backbone, height: usize, width: usize) -> Vec<LayerSummary> {
    let mut summaries = Vec::new();
    let mut shape = vec![1usize, backbone.in_channels, height, width];
    for layer in backbone.net.iter() {
        let macs = layer.macs(&shape[1..]);
        let weight_params = layer.weight_count();
        let input_dims = shape[1..].to_vec();
        match layer.output_dims(&shape) {
            Ok(next) => shape = next,
            Err(_) => break,
        }
        summaries.push(LayerSummary {
            name: layer.name(),
            macs,
            weight_params,
            input_dims,
            output_dims: shape[1..].to_vec(),
        });
    }
    summaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::micro_backbone;
    use ofscil_tensor::SeedRng;

    #[test]
    fn profile_micro_backbone() {
        let mut rng = SeedRng::new(0);
        let mut bb = micro_backbone(&mut rng);
        let p = profile_backbone(&mut bb, 32, 32);
        assert_eq!(p.name, "Micro");
        assert!(p.params > 0);
        assert!(p.macs > 0);
        assert_eq!(p.feature_dim, 64);
        assert!(p.params_millions() < 1.0);
        assert!(p.size_mb_fp32() > p.size_mb_int8());
    }

    #[test]
    fn fcr_adds_parameters_and_macs() {
        let mut rng = SeedRng::new(0);
        let mut bb = micro_backbone(&mut rng);
        let base = profile_backbone(&mut bb, 32, 32);
        let with_fcr = profile_with_fcr(&mut bb, 32, 32, 32);
        assert_eq!(with_fcr.params, base.params + 64 * 32);
        assert_eq!(with_fcr.macs, base.macs + 64 * 32);
    }

    #[test]
    fn per_layer_macs_sum_to_total() {
        let mut rng = SeedRng::new(0);
        let bb = micro_backbone(&mut rng);
        let layers = per_layer_macs(&bb, 16, 16);
        let total: u64 = layers.iter().map(|(_, m)| m).sum();
        assert_eq!(total, bb.macs(16, 16));
        assert!(!layers.is_empty());
    }

    #[test]
    fn layer_summaries_chain_shapes() {
        let mut rng = SeedRng::new(0);
        let bb = micro_backbone(&mut rng);
        let summaries = layer_summaries(&bb, 16, 16);
        assert!(!summaries.is_empty());
        // Shapes chain: output of layer i equals input of layer i+1.
        for window in summaries.windows(2) {
            assert_eq!(window[0].output_dims, window[1].input_dims);
        }
        // First layer consumes the image.
        assert_eq!(summaries[0].input_dims, vec![3, 16, 16]);
        // Final layer produces the flat feature vector.
        assert_eq!(summaries.last().unwrap().output_dims, vec![64]);
        assert_eq!(summaries.last().unwrap().output_spatial(), 1);
        // MAC totals agree with the direct count.
        let total: u64 = summaries.iter().map(|s| s.macs).sum();
        assert_eq!(total, bb.macs(16, 16));
        // Conv layers report resident weights.
        assert!(summaries[0].weight_params > 0);
        assert!(summaries[0].input_elements() > 0);
        assert!(summaries[0].output_elements() > 0);
    }
}
