//! The losses used by O-FSCIL: cross entropy with soft labels (for Mixup /
//! CutMix), the feature-orthogonality regulariser (paper Eq. 1–2) and the
//! multi-margin loss on cosine logits (paper Eq. 4).
//!
//! Every loss returns `(scalar_loss, gradient_wrt_input)` so the training
//! loops can feed the gradient straight into [`crate::Layer::backward`].

use crate::{NnError, Result};
use ofscil_tensor::{log_softmax, softmax, Tensor};

/// Converts hard class labels into one-hot target rows.
///
/// # Errors
///
/// Returns an error when any label is `>= num_classes`.
pub fn one_hot(labels: &[usize], num_classes: usize) -> Result<Tensor> {
    let mut out = Tensor::zeros(&[labels.len(), num_classes]);
    for (i, &label) in labels.iter().enumerate() {
        if label >= num_classes {
            return Err(NnError::InvalidConfig(format!(
                "label {label} out of range for {num_classes} classes"
            )));
        }
        out.set(&[i, label], 1.0)?;
    }
    Ok(out)
}

/// Classification accuracy of `logits` (`[batch, classes]`) against hard
/// labels, in `[0, 1]`.
///
/// # Errors
///
/// Returns an error when shapes disagree.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    if logits.dims().len() != 2 || logits.dims()[0] != labels.len() {
        return Err(NnError::BadInput {
            layer: "accuracy".into(),
            expected: format!("[{}, classes]", labels.len()),
            actual: logits.dims().to_vec(),
        });
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let predictions = logits.argmax_rows()?;
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    Ok(correct as f32 / labels.len() as f32)
}

/// Cross-entropy loss with *soft* targets (rows of `targets` are probability
/// distributions), averaged over the batch. Returns the loss and the gradient
/// with respect to the logits.
///
/// With one-hot targets this reduces to standard cross entropy; soft targets
/// are produced by Mixup and CutMix during pretraining.
///
/// # Errors
///
/// Returns an error when the shapes of `logits` and `targets` disagree.
pub fn cross_entropy_soft(logits: &Tensor, targets: &Tensor) -> Result<(f32, Tensor)> {
    if logits.dims() != targets.dims() || logits.dims().len() != 2 {
        return Err(NnError::BadInput {
            layer: "cross_entropy".into(),
            expected: format!("targets with shape {:?}", logits.dims()),
            actual: targets.dims().to_vec(),
        });
    }
    let batch = logits.dims()[0];
    let classes = logits.dims()[1];
    if batch == 0 {
        return Err(NnError::InvalidConfig("empty batch".into()));
    }
    let mut loss = 0.0f32;
    let mut grad = Tensor::zeros(logits.dims());
    for b in 0..batch {
        let row = logits.row(b)?;
        let target = targets.row(b)?;
        let logp = log_softmax(row);
        let p = softmax(row);
        for c in 0..classes {
            loss -= target[c] * logp[c];
        }
        let grad_row: Vec<f32> = (0..classes)
            .map(|c| (p[c] - target[c]) / batch as f32)
            .collect();
        grad.set_row(b, &grad_row)?;
    }
    Ok((loss / batch as f32, grad))
}

/// Cross-entropy loss with hard labels; convenience wrapper over
/// [`cross_entropy_soft`].
///
/// # Errors
///
/// Returns an error when labels are out of range or shapes disagree.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    let targets = one_hot(labels, logits.dims().get(1).copied().unwrap_or(0))?;
    cross_entropy_soft(logits, &targets)
}

/// Feature-orthogonality regularisation (paper Eq. 1).
///
/// Given a batch of projected features `F` (`[batch, d_p]`), the rows are
/// L2-normalised to `G` and the loss is `‖G·Gᵀ − I‖² / B²`: off-diagonal
/// entries push different samples' features towards orthogonality. Operating
/// on normalised features keeps the loss and its gradient bounded regardless
/// of the feature scale, which is what makes the regulariser safe to apply
/// from the very first (untrained) epoch. Returns the loss and the gradient
/// with respect to the *unnormalised* features.
///
/// # Errors
///
/// Returns an error when `features` is not a matrix.
pub fn orthogonality_loss(features: &Tensor) -> Result<(f32, Tensor)> {
    if features.dims().len() != 2 {
        return Err(NnError::BadInput {
            layer: "orthogonality_loss".into(),
            expected: "[batch, d_p]".into(),
            actual: features.dims().to_vec(),
        });
    }
    let batch = features.dims()[0];
    let dim = features.dims()[1];
    if batch == 0 {
        return Err(NnError::InvalidConfig("empty batch".into()));
    }
    // Row norms and normalised features g_i = f_i / ||f_i||.
    let norms: Vec<f32> = (0..batch)
        .map(|i| {
            let row = &features.as_slice()[i * dim..(i + 1) * dim];
            row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-8)
        })
        .collect();
    let mut normalized = features.clone();
    for (i, norm) in norms.iter().enumerate() {
        for x in &mut normalized.as_mut_slice()[i * dim..(i + 1) * dim] {
            *x /= norm;
        }
    }
    let gram = normalized.matmul(&normalized.transpose()?)?;
    let diff = gram.sub(&Tensor::eye(batch))?;
    let denom = (batch * batch) as f32;
    let loss = diff.norm_sq() / denom;
    // dL/dG = (4 / B²) (G·Gᵀ − I) G, then project through the row
    // normalisation: dL/df_i = (dL/dg_i − (dL/dg_i · g_i) g_i) / ||f_i||.
    let grad_normalized = diff.matmul(&normalized)?.scale(4.0 / denom);
    let mut grad = grad_normalized.clone();
    for (i, &norm) in norms.iter().enumerate() {
        let g = &normalized.as_slice()[i * dim..(i + 1) * dim];
        let dg = &grad_normalized.as_slice()[i * dim..(i + 1) * dim];
        let dot: f32 = g.iter().zip(dg).map(|(a, b)| a * b).sum();
        let out = &mut grad.as_mut_slice()[i * dim..(i + 1) * dim];
        for (k, o) in out.iter_mut().enumerate() {
            *o = (dg[k] - dot * g[k]) / norm;
        }
    }
    Ok((loss, grad))
}

/// Multi-margin loss on cosine-similarity logits (paper Eq. 4).
///
/// For each sample with ground-truth logit `l_gt`, every other class logit
/// `l_i` contributes `max(0, m − l_gt + l_i)²`; the sum is normalised by the
/// number of classes and averaged over the batch. Returns the loss and the
/// gradient with respect to the logits.
///
/// # Errors
///
/// Returns an error when shapes disagree or labels are out of range.
pub fn multi_margin_loss(logits: &Tensor, labels: &[usize], margin: f32) -> Result<(f32, Tensor)> {
    if logits.dims().len() != 2 || logits.dims()[0] != labels.len() {
        return Err(NnError::BadInput {
            layer: "multi_margin_loss".into(),
            expected: format!("[{}, classes]", labels.len()),
            actual: logits.dims().to_vec(),
        });
    }
    let batch = labels.len();
    let classes = logits.dims()[1];
    if batch == 0 || classes == 0 {
        return Err(NnError::InvalidConfig("empty batch or class set".into()));
    }
    let mut loss = 0.0f32;
    let mut grad = Tensor::zeros(logits.dims());
    for (b, &gt) in labels.iter().enumerate() {
        if gt >= classes {
            return Err(NnError::InvalidConfig(format!(
                "label {gt} out of range for {classes} classes"
            )));
        }
        let row = logits.row(b)?;
        let l_gt = row[gt];
        let mut grad_row = vec![0.0f32; classes];
        for (i, &li) in row.iter().enumerate() {
            if i == gt {
                continue;
            }
            let violation = (margin - l_gt + li).max(0.0);
            loss += violation * violation / classes as f32;
            if violation > 0.0 {
                let g = 2.0 * violation / (classes as f32 * batch as f32);
                grad_row[i] += g;
                grad_row[gt] -= g;
            }
        }
        grad.set_row(b, &grad_row)?;
    }
    Ok((loss / batch as f32, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_tensor::SeedRng;

    #[test]
    fn one_hot_rows() {
        let t = one_hot(&[1, 0, 2], 3).unwrap();
        assert_eq!(t.row(0).unwrap(), &[0.0, 1.0, 0.0]);
        assert_eq!(t.row(1).unwrap(), &[1.0, 0.0, 0.0]);
        assert_eq!(t.row(2).unwrap(), &[0.0, 0.0, 1.0]);
        assert!(one_hot(&[3], 3).is_err());
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits =
            Tensor::from_vec(vec![2.0, 1.0, 0.0, 0.0, 1.0, 2.0, 5.0, 0.0, 0.0], &[3, 3]).unwrap();
        assert!((accuracy(&logits, &[0, 2, 1]).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert!(accuracy(&logits, &[0, 2]).is_err());
        assert_eq!(accuracy(&Tensor::zeros(&[0, 3]), &[]).unwrap(), 0.0);
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_small() {
        let confident =
            Tensor::from_vec(vec![10.0, -10.0, -10.0, -10.0, 10.0, -10.0], &[2, 3]).unwrap();
        let (loss, _) = cross_entropy(&confident, &[0, 1]).unwrap();
        assert!(loss < 1e-3, "loss {loss}");
        let uniform = Tensor::zeros(&[2, 3]);
        let (loss_u, _) = cross_entropy(&uniform, &[0, 1]).unwrap();
        assert!((loss_u - (3.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let mut rng = SeedRng::new(0);
        let logits = Tensor::from_vec((0..6).map(|_| rng.normal()).collect(), &[2, 3]).unwrap();
        let labels = [2usize, 0];
        let (_, grad) = cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let fp = cross_entropy(&lp, &labels).unwrap().0;
            let fm = cross_entropy(&lm, &labels).unwrap().0;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - grad.as_slice()[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn soft_targets_interpolate() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.5, 0.1, 0.2, 0.3], &[2, 3]).unwrap();
        let mut soft = one_hot(&[0, 1], 3).unwrap();
        // Mixup-style 0.6/0.4 blend for the first sample.
        soft.set_row(0, &[0.6, 0.0, 0.4]).unwrap();
        let (loss, grad) = cross_entropy_soft(&logits, &soft).unwrap();
        assert!(loss.is_finite());
        assert_eq!(grad.dims(), logits.dims());
        assert!(cross_entropy_soft(&logits, &Tensor::zeros(&[3, 3])).is_err());
    }

    #[test]
    fn orthogonality_loss_zero_for_orthonormal_rows() {
        let f = Tensor::eye(4);
        let (loss, grad) = orthogonality_loss(&f).unwrap();
        assert!(loss < 1e-10);
        assert!(grad.max_abs() < 1e-6);
    }

    #[test]
    fn orthogonality_loss_penalises_identical_rows() {
        let f = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[2, 2]).unwrap();
        let (loss, _) = orthogonality_loss(&f).unwrap();
        assert!(loss > 0.1);
        assert!(orthogonality_loss(&Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn orthogonality_gradient_matches_finite_differences() {
        let mut rng = SeedRng::new(1);
        let f = Tensor::from_vec((0..3 * 4).map(|_| rng.normal()).collect(), &[3, 4]).unwrap();
        let (_, grad) = orthogonality_loss(&f).unwrap();
        let eps = 1e-3;
        for idx in 0..f.len() {
            let mut fp = f.clone();
            fp.as_mut_slice()[idx] += eps;
            let mut fm = f.clone();
            fm.as_mut_slice()[idx] -= eps;
            let lp = orthogonality_loss(&fp).unwrap().0;
            let lm = orthogonality_loss(&fm).unwrap().0;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.as_slice()[idx]).abs() < 1e-2,
                "idx {idx}: {numeric} vs {}",
                grad.as_slice()[idx]
            );
        }
    }

    #[test]
    fn multi_margin_zero_when_separated() {
        // Ground-truth logit exceeds every other logit by more than the margin.
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2], &[1, 3]).unwrap();
        let (loss, grad) = multi_margin_loss(&logits, &[0], 0.1).unwrap();
        assert_eq!(loss, 0.0);
        assert_eq!(grad.max_abs(), 0.0);
    }

    #[test]
    fn multi_margin_penalises_violations() {
        let logits = Tensor::from_vec(vec![0.3, 0.35, 0.0], &[1, 3]).unwrap();
        let (loss, grad) = multi_margin_loss(&logits, &[0], 0.1).unwrap();
        assert!(loss > 0.0);
        // Gradient pushes the ground-truth logit up and the violator down.
        assert!(grad.as_slice()[0] < 0.0);
        assert!(grad.as_slice()[1] > 0.0);
        assert_eq!(grad.as_slice()[2], 0.0);
    }

    #[test]
    fn multi_margin_gradient_matches_finite_differences() {
        let mut rng = SeedRng::new(2);
        let logits =
            Tensor::from_vec((0..2 * 5).map(|_| rng.uniform_range(-0.5, 0.9)).collect(), &[2, 5])
                .unwrap();
        let labels = [3usize, 1];
        let (_, grad) = multi_margin_loss(&logits, &labels, 0.1).unwrap();
        let eps = 1e-3;
        for idx in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let fp = multi_margin_loss(&lp, &labels, 0.1).unwrap().0;
            let fm = multi_margin_loss(&lm, &labels, 0.1).unwrap().0;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad.as_slice()[idx]).abs() < 1e-2,
                "idx {idx}: {numeric} vs {}",
                grad.as_slice()[idx]
            );
        }
    }

    #[test]
    fn multi_margin_rejects_bad_labels() {
        let logits = Tensor::zeros(&[1, 3]);
        assert!(multi_margin_loss(&logits, &[5], 0.1).is_err());
        assert!(multi_margin_loss(&logits, &[0, 1], 0.1).is_err());
    }
}
