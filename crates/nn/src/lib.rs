//! Layer-wise neural-network engine for the O-FSCIL reproduction.
//!
//! The crate provides everything needed to *pretrain*, *metalearn* and run the
//! paper's backbones from scratch in Rust:
//!
//! * a [`Layer`] trait with explicit forward/backward passes and parameter
//!   visitation (no general autograd tape — every layer derives its own
//!   gradient, which keeps the engine small and auditable),
//! * the layers used by MobileNetV2 and ResNet-12 (standard and depthwise
//!   convolutions, batch normalisation, ReLU/ReLU6, pooling, linear),
//! * composite blocks (inverted residual, ResNet basic block) and the backbone
//!   model builders with the paper's stride profiles (Table I),
//! * the three losses of the paper — cross entropy (with soft labels for
//!   Mixup/CutMix), the feature-orthogonality regulariser (Eq. 1) and the
//!   multi-margin loss on cosine logits (Eq. 4),
//! * SGD (momentum + weight decay) and Adam optimizers,
//! * MAC / parameter profiling used to regenerate Table I.
//!
//! # Example
//!
//! ```
//! use ofscil_nn::{layers::Linear, Layer, Mode};
//! use ofscil_tensor::{SeedRng, Tensor};
//!
//! let mut layer = Linear::new(4, 2, true, &mut SeedRng::new(0));
//! let x = Tensor::ones(&[3, 4]);
//! let y = layer.forward(&x, Mode::Eval).unwrap();
//! assert_eq!(y.dims(), &[3, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
mod error;
mod layer;
pub mod layers;
pub mod loss;
pub mod models;
pub mod optim;
mod param;
pub mod profile;

pub use error::NnError;
pub use layer::{Layer, Mode};
pub use param::Parameter;

/// Result alias used across the nn crate.
pub type Result<T> = std::result::Result<T, NnError>;
