//! MobileNetV2 backbone with the paper's stride profiles (Table I).

use super::Backbone;
use crate::blocks::InvertedResidual;
use crate::layers::{BatchNorm, Conv2d, GlobalAvgPool, Relu6, Sequential};
use ofscil_tensor::SeedRng;

/// The three MobileNetV2 stride profiles evaluated in the paper (Table I).
///
/// All variants share the same parameters (the stride profile only changes
/// spatial resolutions); the MAC count grows as strides are removed because
/// later stages operate on larger feature maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MobileNetVariant {
    /// Baseline profile: strides 1,2,2,2,1,2,1 → 25.9 M MACs in the paper.
    X1,
    /// "x2" profile: strides 1,2,2,2,1,1,1 → 45.4 M MACs in the paper.
    X2,
    /// "x4" profile: strides 1,2,2,1,1,1,1 → 149.2 M MACs in the paper.
    X4,
}

impl MobileNetVariant {
    /// The per-stage convolutional strides of the seven inverted-residual
    /// stages, exactly as listed in Table I of the paper.
    pub fn stride_profile(self) -> [usize; 7] {
        match self {
            MobileNetVariant::X1 => [1, 2, 2, 2, 1, 2, 1],
            MobileNetVariant::X2 => [1, 2, 2, 2, 1, 1, 1],
            MobileNetVariant::X4 => [1, 2, 2, 1, 1, 1, 1],
        }
    }

    /// Display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            MobileNetVariant::X1 => "MobileNetV2",
            MobileNetVariant::X2 => "MobileNetV2 x2",
            MobileNetVariant::X4 => "MobileNetV2 x4",
        }
    }
}

/// Per-stage configuration of MobileNetV2: (expansion t, channels c, repeats n).
/// The stride comes from the [`MobileNetVariant`] profile. These are the
/// standard MobileNetV2 settings from Sandler et al. (2018).
const STAGES: [(usize, usize, usize); 7] = [
    (1, 16, 1),
    (6, 24, 2),
    (6, 32, 3),
    (6, 64, 4),
    (6, 96, 3),
    (6, 160, 3),
    (6, 320, 1),
];

/// Width of the stem convolution.
const STEM_CHANNELS: usize = 32;
/// Width of the final 1×1 convolution; this is the paper's d_a = 1280.
const LAST_CHANNELS: usize = 1280;

/// Builds the MobileNetV2 backbone for the given stride profile.
///
/// The stem convolution uses stride 1 (CIFAR-style low-resolution inputs, as
/// in the paper) and the backbone ends with global average pooling producing
/// `[batch, 1280]` features.
pub fn mobilenet_v2(variant: MobileNetVariant, rng: &mut SeedRng) -> Backbone {
    let strides = variant.stride_profile();
    let mut net = Sequential::new(variant.label());

    // Stem: 3x3 conv, stride 1 for 32x32 inputs.
    net.push(Box::new(Conv2d::new(3, STEM_CHANNELS, 3, 1, 1, false, rng)));
    net.push(Box::new(BatchNorm::new(STEM_CHANNELS)));
    net.push(Box::new(Relu6::new()));

    let mut c_in = STEM_CHANNELS;
    for (stage, &(t, c_out, n)) in STAGES.iter().enumerate() {
        for rep in 0..n {
            // Only the first block of a stage applies the profile stride.
            let stride = if rep == 0 { strides[stage] } else { 1 };
            net.push(Box::new(InvertedResidual::new(c_in, c_out, stride, t, rng)));
            c_in = c_out;
        }
    }

    // Head: 1x1 conv to d_a = 1280, then global pooling.
    net.push(Box::new(Conv2d::new(c_in, LAST_CHANNELS, 1, 1, 0, false, rng)));
    net.push(Box::new(BatchNorm::new(LAST_CHANNELS)));
    net.push(Box::new(Relu6::new()));
    net.push(Box::new(GlobalAvgPool::new()));

    Backbone {
        name: variant.label().to_string(),
        net,
        feature_dim: LAST_CHANNELS,
        in_channels: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, Mode};
    use ofscil_tensor::Tensor;

    #[test]
    fn stride_profiles_match_table1() {
        assert_eq!(MobileNetVariant::X1.stride_profile(), [1, 2, 2, 2, 1, 2, 1]);
        assert_eq!(MobileNetVariant::X2.stride_profile(), [1, 2, 2, 2, 1, 1, 1]);
        assert_eq!(MobileNetVariant::X4.stride_profile(), [1, 2, 2, 1, 1, 1, 1]);
    }

    #[test]
    fn parameter_count_is_variant_independent_and_near_2_5m() {
        let mut rng = SeedRng::new(0);
        let mut x1 = mobilenet_v2(MobileNetVariant::X1, &mut rng);
        let mut x4 = mobilenet_v2(MobileNetVariant::X4, &mut rng);
        let p1 = x1.param_count();
        let p4 = x4.param_count();
        assert_eq!(p1, p4, "stride profile must not change parameter count");
        // The paper reports 2.5 M parameters (backbone + FCR). The backbone
        // alone is the standard MobileNetV2 feature extractor at ~2.2 M.
        assert!((2_000_000..2_400_000).contains(&p1), "got {p1}");
    }

    #[test]
    fn mac_counts_are_ordered_x1_x2_x4() {
        let mut rng = SeedRng::new(0);
        let x1 = mobilenet_v2(MobileNetVariant::X1, &mut rng);
        let x2 = mobilenet_v2(MobileNetVariant::X2, &mut rng);
        let x4 = mobilenet_v2(MobileNetVariant::X4, &mut rng);
        let (m1, m2, m4) = (x1.macs(32, 32), x2.macs(32, 32), x4.macs(32, 32));
        assert!(m1 < m2 && m2 < m4, "{m1} {m2} {m4}");
        // Paper: 25.9 M / 45.4 M / 149.2 M. Allow a generous tolerance — the
        // exact number depends on details such as the stem stride — but the
        // order of magnitude and the ratios must hold.
        assert!((15_000_000..60_000_000).contains(&m1), "x1 {m1}");
        assert!((25_000_000..90_000_000).contains(&m2), "x2 {m2}");
        assert!((90_000_000..260_000_000).contains(&m4), "x4 {m4}");
        let ratio = m4 as f64 / m1 as f64;
        assert!(ratio > 3.0 && ratio < 8.0, "x4/x1 ratio {ratio}");
    }

    #[test]
    fn feature_dim_is_1280() {
        let mut rng = SeedRng::new(0);
        let bb = mobilenet_v2(MobileNetVariant::X1, &mut rng);
        assert_eq!(bb.feature_dim, 1280);
        assert_eq!(bb.net.output_dims(&[1, 3, 32, 32]).unwrap(), vec![1, 1280]);
    }

    #[test]
    #[ignore = "full-size forward pass; run with --ignored for a full check"]
    fn full_forward_pass_runs() {
        let mut rng = SeedRng::new(0);
        let mut bb = mobilenet_v2(MobileNetVariant::X1, &mut rng);
        let x = Tensor::ones(&[1, 3, 32, 32]);
        let y = bb.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 1280]);
        assert!(y.all_finite());
    }
}
