//! Backbone model builders: MobileNetV2 (Table I stride profiles), ResNet-12
//! and a fast "micro" profile used for laptop-scale training experiments.

mod mobilenetv2;
mod resnet;

pub use mobilenetv2::{mobilenet_v2, MobileNetVariant};
pub use resnet::resnet12;

use crate::layers::Sequential;
use crate::{Layer, Mode, Result};
use ofscil_tensor::{SeedRng, Tensor};

/// A feature-extraction backbone: a [`Sequential`] network mapping images
/// `[batch, channels, h, w]` to flat features `[batch, feature_dim]` (the
/// paper's θ_a of dimension d_a).
#[derive(Debug)]
pub struct Backbone {
    /// Display name (matches the paper's Table I rows).
    pub name: String,
    /// The underlying network.
    pub net: Sequential,
    /// Output feature dimensionality d_a.
    pub feature_dim: usize,
    /// Expected number of input channels.
    pub in_channels: usize,
}

impl Backbone {
    /// Runs the backbone on a batch of images.
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible.
    pub fn forward(&mut self, images: &Tensor, mode: Mode) -> Result<Tensor> {
        self.net.forward(images, mode)
    }

    /// Propagates gradients back through the backbone.
    ///
    /// # Errors
    ///
    /// Returns an error when no forward pass was cached.
    pub fn backward(&mut self, grad: &Tensor) -> Result<Tensor> {
        self.net.backward(grad)
    }

    /// Total number of trainable parameters.
    pub fn param_count(&mut self) -> u64 {
        self.net.param_count()
    }

    /// MACs for one sample of the given spatial size.
    pub fn macs(&self, height: usize, width: usize) -> u64 {
        self.net.macs(&[self.in_channels, height, width])
    }
}

/// The backbone family used by an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackboneKind {
    /// MobileNetV2 with the paper's baseline stride profile (Table I, "x1").
    MobileNetV2,
    /// MobileNetV2 x2 stride profile.
    MobileNetV2X2,
    /// MobileNetV2 x4 stride profile.
    MobileNetV2X4,
    /// ResNet-12 (the large baseline backbone).
    ResNet12,
    /// A small convolutional backbone for fast laptop-scale experiments.
    Micro,
}

impl BackboneKind {
    /// Human-readable name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            BackboneKind::MobileNetV2 => "MobileNetV2",
            BackboneKind::MobileNetV2X2 => "MobileNetV2 x2",
            BackboneKind::MobileNetV2X4 => "MobileNetV2 x4",
            BackboneKind::ResNet12 => "ResNet12",
            BackboneKind::Micro => "Micro",
        }
    }

    /// Builds the backbone.
    pub fn build(self, rng: &mut SeedRng) -> Backbone {
        match self {
            BackboneKind::MobileNetV2 => mobilenet_v2(MobileNetVariant::X1, rng),
            BackboneKind::MobileNetV2X2 => mobilenet_v2(MobileNetVariant::X2, rng),
            BackboneKind::MobileNetV2X4 => mobilenet_v2(MobileNetVariant::X4, rng),
            BackboneKind::ResNet12 => resnet12(rng),
            BackboneKind::Micro => micro_backbone(rng),
        }
    }

    /// All the full-size backbones reported in Table I.
    pub fn table1_entries() -> [BackboneKind; 4] {
        [
            BackboneKind::MobileNetV2,
            BackboneKind::MobileNetV2X2,
            BackboneKind::MobileNetV2X4,
            BackboneKind::ResNet12,
        ]
    }
}

/// Builds the small convolutional backbone used for fast, laptop-scale runs
/// of the accuracy experiments (the "micro training profile" in DESIGN.md).
///
/// Three conv–BN–ReLU stages (16, 32, 64 channels, stride 2 each) followed by
/// global average pooling; d_a = 64.
pub fn micro_backbone(rng: &mut SeedRng) -> Backbone {
    use crate::layers::{BatchNorm, Conv2d, GlobalAvgPool, Relu};
    let mut net = Sequential::new("micro");
    let channels = [16usize, 32, 64];
    let mut c_in = 3usize;
    for &c_out in &channels {
        net.push(Box::new(Conv2d::new(c_in, c_out, 3, 2, 1, false, rng)));
        net.push(Box::new(BatchNorm::new(c_out)));
        net.push(Box::new(Relu::new()));
        c_in = c_out;
    }
    net.push(Box::new(GlobalAvgPool::new()));
    Backbone { name: "Micro".into(), net, feature_dim: 64, in_channels: 3 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_backbone_forward_shape() {
        let mut rng = SeedRng::new(0);
        let mut bb = micro_backbone(&mut rng);
        let x = Tensor::ones(&[2, 3, 16, 16]);
        let y = bb.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 64]);
        assert!(bb.param_count() > 0);
        assert!(bb.macs(16, 16) > 0);
    }

    #[test]
    fn kind_labels_are_distinct() {
        use std::collections::HashSet;
        let labels: HashSet<_> = [
            BackboneKind::MobileNetV2,
            BackboneKind::MobileNetV2X2,
            BackboneKind::MobileNetV2X4,
            BackboneKind::ResNet12,
            BackboneKind::Micro,
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn micro_backbone_trains_end_to_end() {
        let mut rng = SeedRng::new(1);
        let mut bb = micro_backbone(&mut rng);
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let y = bb.forward(&x, Mode::Train).unwrap();
        let g = bb.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(g.dims(), x.dims());
    }
}
