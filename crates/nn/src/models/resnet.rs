//! ResNet-12, the large backbone used by the paper (and most FSCIL work) as
//! the accuracy-oriented reference point.

use super::Backbone;
use crate::blocks::ResNetBlock;
use crate::layers::{GlobalAvgPool, MaxPool2d, Sequential};
use ofscil_tensor::SeedRng;

/// Per-stage output channels of ResNet-12 as used in the few-shot literature.
const STAGE_CHANNELS: [usize; 4] = [64, 160, 320, 640];

/// Builds the ResNet-12 backbone: four residual stages of three stride-1 3×3
/// convolutions each (64, 160, 320, 640 channels), a 2×2 max-pool after every
/// stage, and global average pooling. Output features have d_a = 640.
///
/// This is the variant used throughout the few-shot literature (and by
/// C-FSCIL / the paper): the convolutions run at full stage resolution and the
/// pooling performs the downsampling, which is what makes the backbone cost
/// ~525 M MACs at 32×32 despite its moderate depth.
pub fn resnet12(rng: &mut SeedRng) -> Backbone {
    let mut net = Sequential::new("ResNet12");
    let mut c_in = 3usize;
    for &c_out in &STAGE_CHANNELS {
        net.push(Box::new(ResNetBlock::new(c_in, c_out, 1, 3, rng)));
        net.push(Box::new(MaxPool2d::new()));
        c_in = c_out;
    }
    net.push(Box::new(GlobalAvgPool::new()));
    Backbone { name: "ResNet12".into(), net, feature_dim: 640, in_channels: 3 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layer;

    #[test]
    fn parameter_count_near_12_9m() {
        let mut rng = SeedRng::new(0);
        let mut bb = resnet12(&mut rng);
        let params = bb.param_count();
        // Paper Table I: 12.9 M parameters.
        assert!((11_000_000..14_500_000).contains(&params), "got {params}");
    }

    #[test]
    fn macs_are_much_larger_than_mobilenet() {
        let mut rng = SeedRng::new(0);
        let res = resnet12(&mut rng);
        let macs = res.macs(32, 32);
        // Paper Table I: 525.3 M MACs; require the right order of magnitude.
        assert!((300_000_000..800_000_000).contains(&macs), "got {macs}");
    }

    #[test]
    fn feature_dim_is_640() {
        let mut rng = SeedRng::new(0);
        let bb = resnet12(&mut rng);
        assert_eq!(bb.feature_dim, 640);
        assert_eq!(bb.net.output_dims(&[1, 3, 32, 32]).unwrap(), vec![1, 640]);
    }
}
