//! Composite blocks: the MobileNetV2 inverted residual and the ResNet basic
//! block used by the ResNet-12 backbone.

use crate::layers::{BatchNorm, Conv2d, DepthwiseConv2d, Relu, Relu6, Sequential};
use crate::{Layer, Mode, NnError, Parameter, Result};
use ofscil_tensor::{SeedRng, Tensor};

/// MobileNetV2 inverted residual block: 1×1 expansion → 3×3 depthwise →
/// 1×1 linear projection, with an identity skip connection when the stride is
/// one and the channel count is preserved.
#[derive(Debug)]
pub struct InvertedResidual {
    body: Sequential,
    use_residual: bool,
    in_channels: usize,
    out_channels: usize,
    stride: usize,
}

impl InvertedResidual {
    /// Creates an inverted residual block.
    ///
    /// `expansion` is the channel expansion factor `t` of the MobileNetV2
    /// paper (1 disables the expansion convolution).
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        expansion: usize,
        rng: &mut SeedRng,
    ) -> Self {
        let hidden = in_channels * expansion;
        let mut body = Sequential::new(format!("inv_res({in_channels}→{out_channels})"));
        if expansion != 1 {
            body.push(Box::new(Conv2d::new(in_channels, hidden, 1, 1, 0, false, rng)));
            body.push(Box::new(BatchNorm::new(hidden)));
            body.push(Box::new(Relu6::new()));
        }
        body.push(Box::new(DepthwiseConv2d::new(hidden, 3, stride, 1, false, rng)));
        body.push(Box::new(BatchNorm::new(hidden)));
        body.push(Box::new(Relu6::new()));
        body.push(Box::new(Conv2d::new(hidden, out_channels, 1, 1, 0, false, rng)));
        body.push(Box::new(BatchNorm::new(out_channels)));
        let use_residual = stride == 1 && in_channels == out_channels;
        InvertedResidual { body, use_residual, in_channels, out_channels, stride }
    }

    /// Returns `true` when the block adds an identity skip connection.
    pub fn has_residual(&self) -> bool {
        self.use_residual
    }

    /// The convolutional stride of the block.
    pub fn stride(&self) -> usize {
        self.stride
    }
}

impl Layer for InvertedResidual {
    fn name(&self) -> String {
        format!(
            "inverted_residual({}→{}, s{}{})",
            self.in_channels,
            self.out_channels,
            self.stride,
            if self.use_residual { ", skip" } else { "" }
        )
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = self.body.forward(input, mode)?;
        if self.use_residual {
            Ok(out.add(input)?)
        } else {
            Ok(out)
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let grad_body = self.body.backward(grad_output)?;
        if self.use_residual {
            Ok(grad_body.add(grad_output)?)
        } else {
            Ok(grad_body)
        }
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        self.body.visit_params(visitor);
    }

    fn output_dims(&self, input: &[usize]) -> Result<Vec<usize>> {
        self.body.output_dims(input)
    }

    fn macs(&self, input: &[usize]) -> u64 {
        self.body.macs(input)
    }

    fn weight_count(&self) -> u64 {
        self.body.weight_count()
    }
}

/// ResNet basic block with `depth` 3×3 convolutions (3 for ResNet-12), a
/// projection shortcut when the shape changes, and a trailing ReLU.
#[derive(Debug)]
pub struct ResNetBlock {
    body: Sequential,
    shortcut: Option<Sequential>,
    relu_mask: Option<Vec<bool>>,
    in_channels: usize,
    out_channels: usize,
    stride: usize,
}

impl ResNetBlock {
    /// Creates a residual block of `depth` convolutions; the first convolution
    /// carries the stride.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        depth: usize,
        rng: &mut SeedRng,
    ) -> Self {
        assert!(depth >= 1, "residual block needs at least one convolution");
        let mut body = Sequential::new(format!("resblock({in_channels}→{out_channels})"));
        let mut c_in = in_channels;
        for d in 0..depth {
            let s = if d == 0 { stride } else { 1 };
            body.push(Box::new(Conv2d::new(c_in, out_channels, 3, s, 1, false, rng)));
            body.push(Box::new(BatchNorm::new(out_channels)));
            if d + 1 < depth {
                body.push(Box::new(Relu::new()));
            }
            c_in = out_channels;
        }
        let shortcut = (stride != 1 || in_channels != out_channels).then(|| {
            let mut s = Sequential::new("shortcut");
            s.push(Box::new(Conv2d::new(in_channels, out_channels, 1, stride, 0, false, rng)));
            s.push(Box::new(BatchNorm::new(out_channels)));
            s
        });
        ResNetBlock {
            body,
            shortcut,
            relu_mask: None,
            in_channels,
            out_channels,
            stride,
        }
    }
}

impl Layer for ResNetBlock {
    fn name(&self) -> String {
        format!(
            "resnet_block({}→{}, s{})",
            self.in_channels, self.out_channels, self.stride
        )
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let body_out = self.body.forward(input, mode)?;
        let skip = match &mut self.shortcut {
            Some(proj) => proj.forward(input, mode)?,
            None => input.clone(),
        };
        let pre_act = body_out.add(&skip)?;
        if mode.is_train() {
            self.relu_mask = Some(pre_act.as_slice().iter().map(|&x| x > 0.0).collect());
        }
        Ok(pre_act.map(|x| x.max(0.0)))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .relu_mask
            .take()
            .ok_or_else(|| NnError::NoForwardCache(self.name()))?;
        let masked: Vec<f32> = grad_output
            .as_slice()
            .iter()
            .zip(&mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        let grad_pre = Tensor::from_vec(masked, grad_output.dims())?;
        let grad_body = self.body.backward(&grad_pre)?;
        let grad_skip = match &mut self.shortcut {
            Some(proj) => proj.backward(&grad_pre)?,
            None => grad_pre,
        };
        Ok(grad_body.add(&grad_skip)?)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Parameter)) {
        self.body.visit_params(visitor);
        if let Some(proj) = &mut self.shortcut {
            proj.visit_params(visitor);
        }
    }

    fn output_dims(&self, input: &[usize]) -> Result<Vec<usize>> {
        self.body.output_dims(input)
    }

    fn macs(&self, input: &[usize]) -> u64 {
        let shortcut_macs = self.shortcut.as_ref().map_or(0, |s| s.macs(input));
        self.body.macs(input) + shortcut_macs
    }

    fn weight_count(&self) -> u64 {
        self.body.weight_count() + self.shortcut.as_ref().map_or(0, |s| s.weight_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverted_residual_shapes() {
        let mut rng = SeedRng::new(0);
        let mut blk = InvertedResidual::new(8, 8, 1, 6, &mut rng);
        assert!(blk.has_residual());
        let y = blk.forward(&Tensor::ones(&[2, 8, 8, 8]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 8, 8, 8]);

        let mut strided = InvertedResidual::new(8, 16, 2, 6, &mut rng);
        assert!(!strided.has_residual());
        assert_eq!(strided.stride(), 2);
        let y = strided.forward(&Tensor::ones(&[1, 8, 8, 8]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 16, 4, 4]);
        assert_eq!(strided.output_dims(&[1, 8, 8, 8]).unwrap(), vec![1, 16, 4, 4]);
    }

    #[test]
    fn expansion_one_skips_expand_conv() {
        let mut rng = SeedRng::new(1);
        let mut thin = InvertedResidual::new(8, 8, 1, 1, &mut rng);
        let mut fat = InvertedResidual::new(8, 8, 1, 6, &mut rng);
        assert!(thin.param_count() < fat.param_count());
    }

    #[test]
    fn inverted_residual_backward_flows() {
        let mut rng = SeedRng::new(2);
        let mut blk = InvertedResidual::new(4, 4, 1, 2, &mut rng);
        let x = Tensor::ones(&[1, 4, 6, 6]);
        let y = blk.forward(&x, Mode::Train).unwrap();
        let g = blk.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(g.dims(), x.dims());
        // The residual path alone guarantees a nonzero input gradient.
        assert!(g.max_abs() > 0.0);
        let mut got_grad = false;
        blk.visit_params(&mut |p| {
            if p.trainable && p.grad.max_abs() > 0.0 {
                got_grad = true;
            }
        });
        assert!(got_grad);
    }

    #[test]
    fn resnet_block_shapes_and_shortcut() {
        let mut rng = SeedRng::new(3);
        let mut same = ResNetBlock::new(8, 8, 1, 2, &mut rng);
        let y = same.forward(&Tensor::ones(&[1, 8, 8, 8]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 8, 8, 8]);

        let mut down = ResNetBlock::new(8, 16, 2, 3, &mut rng);
        let y = down.forward(&Tensor::ones(&[1, 8, 8, 8]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 16, 4, 4]);
        // Projection shortcut adds parameters.
        assert!(down.param_count() > 0);
    }

    #[test]
    fn resnet_block_output_is_non_negative() {
        let mut rng = SeedRng::new(4);
        let mut blk = ResNetBlock::new(4, 4, 1, 2, &mut rng);
        let x = Tensor::from_vec((0..4 * 16).map(|i| (i as f32 - 32.0) * 0.1).collect(), &[1, 4, 4, 4])
            .unwrap();
        let y = blk.forward(&x, Mode::Eval).unwrap();
        assert!(y.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn resnet_block_backward_flows() {
        let mut rng = SeedRng::new(5);
        let mut blk = ResNetBlock::new(3, 6, 2, 3, &mut rng);
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let y = blk.forward(&x, Mode::Train).unwrap();
        let g = blk.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(g.dims(), x.dims());
        assert!(blk.backward(&Tensor::ones(y.dims())).is_err());
    }

    #[test]
    fn macs_include_shortcut() {
        let mut rng = SeedRng::new(6);
        let with_proj = ResNetBlock::new(8, 16, 2, 2, &mut rng);
        let body_only: u64 = with_proj.body.macs(&[8, 8, 8]);
        assert!(with_proj.macs(&[8, 8, 8]) > body_only);
    }
}
