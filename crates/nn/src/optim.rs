//! Optimizers: SGD with momentum/weight decay and Adam.
//!
//! Optimizers keep per-parameter state indexed by the deterministic
//! [`crate::Layer::visit_params`] visitation order, so they work with any
//! layer or container without the parameters having globally unique names.

use crate::Layer;
use ofscil_tensor::Tensor;

/// Clips the global L2 norm of all trainable-parameter gradients of `layer`
/// to at most `max_norm`, returning the norm before clipping.
///
/// Gradient clipping keeps the short, high-learning-rate schedules used by
/// the micro experiment profile numerically stable.
pub fn clip_gradient_norm(layer: &mut dyn Layer, max_norm: f32) -> f32 {
    let mut norm_sq = 0.0f32;
    layer.visit_params(&mut |param| {
        if param.trainable {
            norm_sq += param.grad.norm_sq();
        }
    });
    let norm = norm_sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        layer.visit_params(&mut |param| {
            if param.trainable {
                param.grad.map_in_place(|g| g * scale);
            }
        });
    }
    norm
}

/// Stochastic gradient descent with classical momentum and decoupled L2
/// weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay applied to the parameter values.
    pub weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(learning_rate: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd { learning_rate, momentum, weight_decay, velocity: Vec::new() }
    }

    /// Applies one update step to every trainable parameter of `layer` and
    /// zeroes the gradients afterwards.
    pub fn step(&mut self, layer: &mut dyn Layer) {
        let mut index = 0usize;
        let lr = self.learning_rate;
        let momentum = self.momentum;
        let weight_decay = self.weight_decay;
        let velocity = &mut self.velocity;
        layer.visit_params(&mut |param| {
            if velocity.len() <= index {
                velocity.push(Tensor::zeros(param.value.dims()));
            }
            if param.trainable {
                let v = &mut velocity[index];
                if v.dims() != param.value.dims() {
                    *v = Tensor::zeros(param.value.dims());
                }
                for ((vel, g), w) in v
                    .as_mut_slice()
                    .iter_mut()
                    .zip(param.grad.as_slice())
                    .zip(param.value.as_slice())
                {
                    *vel = momentum * *vel + g + weight_decay * w;
                }
                param
                    .value
                    .axpy(-lr, v)
                    .expect("velocity shape matches parameter");
            }
            param.zero_grad();
            index += 1;
        });
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with optional L2 weight decay.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stability constant.
    pub epsilon: f32,
    /// L2 weight decay applied to the parameter values.
    pub weight_decay: f32,
    first_moment: Vec<Tensor>,
    second_moment: Vec<Tensor>,
    timestep: u64,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β coefficients.
    pub fn new(learning_rate: f32) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            weight_decay: 0.0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
            timestep: 0,
        }
    }

    /// Sets the weight decay (builder style).
    #[must_use]
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Applies one update step to every trainable parameter of `layer` and
    /// zeroes the gradients afterwards.
    pub fn step(&mut self, layer: &mut dyn Layer) {
        self.timestep += 1;
        let t = self.timestep as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        let (lr, beta1, beta2, eps, wd) = (
            self.learning_rate,
            self.beta1,
            self.beta2,
            self.epsilon,
            self.weight_decay,
        );
        let first = &mut self.first_moment;
        let second = &mut self.second_moment;
        let mut index = 0usize;
        layer.visit_params(&mut |param| {
            if first.len() <= index {
                first.push(Tensor::zeros(param.value.dims()));
                second.push(Tensor::zeros(param.value.dims()));
            }
            if param.trainable {
                let m = &mut first[index];
                let v = &mut second[index];
                if m.dims() != param.value.dims() {
                    *m = Tensor::zeros(param.value.dims());
                    *v = Tensor::zeros(param.value.dims());
                }
                for (((mi, vi), gi), wi) in m
                    .as_mut_slice()
                    .iter_mut()
                    .zip(v.as_mut_slice().iter_mut())
                    .zip(param.grad.as_slice())
                    .zip(param.value.as_mut_slice())
                {
                    let g = gi + wd * *wi;
                    *mi = beta1 * *mi + (1.0 - beta1) * g;
                    *vi = beta2 * *vi + (1.0 - beta2) * g * g;
                    let m_hat = *mi / bias1;
                    let v_hat = *vi / bias2;
                    *wi -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
            param.zero_grad();
            index += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::loss::cross_entropy;
    use crate::{Layer, Mode};
    use ofscil_tensor::{SeedRng, Tensor};

    /// Trains a tiny linear classifier on a separable two-class problem and
    /// returns the final loss.
    fn train_linear(optimizer: &mut dyn FnMut(&mut Linear), steps: usize) -> f32 {
        let mut rng = SeedRng::new(42);
        let mut layer = Linear::new(2, 2, true, &mut rng);
        let x = Tensor::from_vec(
            vec![1.0, 0.0, 0.9, 0.1, 0.0, 1.0, 0.1, 0.9],
            &[4, 2],
        )
        .unwrap();
        let labels = [0usize, 0, 1, 1];
        let mut final_loss = f32::INFINITY;
        for _ in 0..steps {
            let logits = layer.forward(&x, Mode::Train).unwrap();
            let (loss, grad) = cross_entropy(&logits, &labels).unwrap();
            layer.backward(&grad).unwrap();
            optimizer(&mut layer);
            final_loss = loss;
        }
        final_loss
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut sgd = Sgd::new(0.5, 0.9, 0.0);
        let loss = train_linear(&mut |l| sgd.step(l), 60);
        assert!(loss < 0.1, "final loss {loss}");
    }

    #[test]
    fn adam_reduces_loss() {
        let mut adam = Adam::new(0.05);
        let loss = train_linear(&mut |l| adam.step(l), 60);
        assert!(loss < 0.1, "final loss {loss}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = SeedRng::new(0);
        let mut layer = Linear::new(4, 4, false, &mut rng);
        let before = layer.weight().norm();
        let mut sgd = Sgd::new(0.1, 0.0, 0.5);
        // No data gradient: only the decay term acts.
        for _ in 0..10 {
            layer.forward(&Tensor::ones(&[1, 4]), Mode::Train).unwrap();
            layer.zero_grads();
            sgd.step(&mut layer);
        }
        assert!(layer.weight().norm() < before);
    }

    #[test]
    fn frozen_parameters_are_untouched() {
        let mut rng = SeedRng::new(1);
        let mut layer = Linear::new(3, 3, true, &mut rng);
        layer.set_trainable(false);
        let before = layer.weight().clone();
        let x = Tensor::ones(&[2, 3]);
        let y = layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&Tensor::ones(y.dims())).unwrap();
        let mut sgd = Sgd::new(1.0, 0.9, 0.0);
        sgd.step(&mut layer);
        assert_eq!(layer.weight(), &before);
        // Gradients are still cleared for frozen parameters.
        layer.visit_params(&mut |p| assert_eq!(p.grad.max_abs(), 0.0));
    }

    #[test]
    fn clip_gradient_norm_bounds_large_gradients() {
        let mut rng = SeedRng::new(3);
        let mut layer = Linear::new(8, 8, true, &mut rng);
        let x = Tensor::full(&[4, 8], 100.0);
        let y = layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&Tensor::full(y.dims(), 50.0)).unwrap();
        let before = clip_gradient_norm(&mut layer, 1.0);
        assert!(before > 1.0);
        // After clipping, the global norm is at most the limit.
        let mut after_sq = 0.0;
        layer.visit_params(&mut |p| {
            if p.trainable {
                after_sq += p.grad.norm_sq();
            }
        });
        assert!(after_sq.sqrt() <= 1.0 + 1e-3);
        // Small gradients are untouched.
        layer.zero_grads();
        let untouched = clip_gradient_norm(&mut layer, 1.0);
        assert_eq!(untouched, 0.0);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut rng = SeedRng::new(2);
        let mut layer = Linear::new(2, 2, true, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let y = layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&Tensor::ones(y.dims())).unwrap();
        let mut adam = Adam::new(0.01).with_weight_decay(1e-4);
        adam.step(&mut layer);
        layer.visit_params(&mut |p| assert_eq!(p.grad.max_abs(), 0.0));
    }
}
