//! Error type for the nn crate.

use ofscil_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error returned by fallible neural-network operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// The input to a layer had an unexpected shape.
    BadInput {
        /// Layer that rejected the input.
        layer: String,
        /// Human-readable description of the expectation.
        expected: String,
        /// The offending shape.
        actual: Vec<usize>,
    },
    /// `backward` was called before `forward` (no cached activations).
    NoForwardCache(String),
    /// A configuration value was invalid.
    InvalidConfig(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadInput { layer, expected, actual } => {
                write!(f, "layer {layer} expected {expected}, got shape {actual:?}")
            }
            NnError::NoForwardCache(layer) => {
                write!(f, "backward called on {layer} before forward")
            }
            NnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = NnError::from(TensorError::Empty("max"));
        assert!(e.to_string().contains("tensor error"));
        assert!(e.source().is_some());
        let e = NnError::NoForwardCache("conv1".into());
        assert!(e.to_string().contains("conv1"));
    }
}
