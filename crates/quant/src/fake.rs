//! Quantize–dequantize ("fake quantization") simulation of int8 inference.
//!
//! The INT8 rows of Table II are produced by running the floating-point model
//! with weights and activations passed through an int8
//! quantize–dequantize step, which reproduces the numerics of the deployed
//! integer network while reusing the f32 execution engine. This is the same
//! simulation quantization-aware-training frameworks (including Quantlab/TQT
//! used by the paper) rely on.

use crate::{calibrate_power_of_two, Result};
use ofscil_nn::Layer;
use ofscil_tensor::Tensor;

/// An activation fake-quantizer: clamps to a per-tensor threshold and rounds
/// to the configured number of levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FakeQuant {
    bits: u8,
}

impl FakeQuant {
    /// Creates a fake quantizer for the given bit width (1..=8).
    ///
    /// # Errors
    ///
    /// Returns an error for unsupported bit widths.
    pub fn new(bits: u8) -> Result<Self> {
        if !(1..=8).contains(&bits) {
            return Err(crate::QuantError::UnsupportedBits { bits });
        }
        Ok(FakeQuant { bits })
    }

    /// The simulated bit width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of positive quantization levels (`2^(bits-1) - 1`).
    pub fn positive_levels(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// Applies quantize–dequantize to a tensor using a per-tensor max-abs
    /// scale. A 1-bit quantizer degenerates to `sign(x) * max_abs` as in the
    /// paper's Fig. 3 sweep.
    pub fn apply(&self, tensor: &Tensor) -> Tensor {
        let max_abs = tensor.max_abs();
        if max_abs < 1e-12 {
            return tensor.clone();
        }
        let levels = self.positive_levels().max(1) as f32;
        let scale = max_abs / levels;
        tensor.map(|v| (v / scale).round().clamp(-levels, levels) * scale)
    }
}

/// Fake-quantizes every trainable parameter of a layer (or whole model) in
/// place using TQT-style power-of-two thresholds, simulating int8 weight
/// storage. Returns the number of quantized parameters.
pub fn quantize_layer_weights(layer: &mut dyn Layer, bits: u8) -> Result<u64> {
    let quantizer = FakeQuant::new(bits)?;
    let mut count = 0u64;
    let mut calibration_failed = false;
    layer.visit_params(&mut |param| {
        if !param.trainable || param.is_empty() {
            return;
        }
        match calibrate_power_of_two(param.value.as_slice()) {
            Ok((_, qp)) => {
                let levels = quantizer.positive_levels() as f32;
                // Rescale the int8 step to the requested bit width.
                let scale = qp.scale * (127.0 / levels);
                param.value.map_in_place(|v| {
                    (v / scale).round().clamp(-levels, levels) * scale
                });
                count += param.len() as u64;
            }
            Err(_) => calibration_failed = true,
        }
    });
    if calibration_failed {
        return Err(crate::QuantError::EmptyCalibration);
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_nn::layers::Linear;
    use ofscil_nn::{Layer, Mode};
    use ofscil_tensor::{SeedRng, Tensor};

    #[test]
    fn rejects_bad_bit_widths() {
        assert!(FakeQuant::new(0).is_err());
        assert!(FakeQuant::new(9).is_err());
        assert!(FakeQuant::new(8).is_ok());
        assert_eq!(FakeQuant::new(3).unwrap().positive_levels(), 3);
    }

    #[test]
    fn eight_bit_error_is_small_three_bit_is_larger() {
        let mut rng = SeedRng::new(0);
        let t = Tensor::from_vec((0..512).map(|_| rng.normal()).collect(), &[512]).unwrap();
        let q8 = FakeQuant::new(8).unwrap().apply(&t);
        let q3 = FakeQuant::new(3).unwrap().apply(&t);
        let e8 = t.max_abs_diff(&q8).unwrap();
        let e3 = t.max_abs_diff(&q3).unwrap();
        assert!(e8 < e3);
        assert!(e8 < 0.05 * t.max_abs());
    }

    #[test]
    fn one_bit_keeps_only_signs() {
        let t = Tensor::from_slice(&[0.2, -0.7, 1.5, -0.01]);
        let q = FakeQuant::new(1).unwrap().apply(&t);
        for (orig, quant) in t.as_slice().iter().zip(q.as_slice()) {
            assert_eq!(orig.signum(), quant.signum());
            assert!((quant.abs() - 1.5).abs() < 1e-6 || *quant == 0.0);
        }
    }

    #[test]
    fn zero_tensor_unchanged() {
        let t = Tensor::zeros(&[16]);
        assert_eq!(FakeQuant::new(4).unwrap().apply(&t), t);
    }

    #[test]
    fn layer_weights_change_little_at_int8() {
        let mut rng = SeedRng::new(1);
        let mut layer = Linear::new(16, 8, true, &mut rng);
        let before = layer.weight().clone();
        let x = Tensor::ones(&[2, 16]);
        let before_out = layer.forward(&x, Mode::Eval).unwrap();
        let count = quantize_layer_weights(&mut layer, 8).unwrap();
        assert_eq!(count, 16 * 8 + 8);
        let after_out = layer.forward(&x, Mode::Eval).unwrap();
        assert!(layer.weight().max_abs_diff(&before).unwrap() > 0.0);
        // The functional change at int8 is small relative to the output scale.
        let rel = before_out.max_abs_diff(&after_out).unwrap() / before_out.max_abs().max(1e-6);
        assert!(rel < 0.1, "relative change {rel}");
    }
}
