//! TQT-style threshold calibration.
//!
//! Trained Quantization Thresholds (Jain et al., 2020) learn power-of-two
//! clipping thresholds. Offline we reproduce the essential behaviour with a
//! grid search over power-of-two thresholds minimising the quantization mean
//! squared error on calibration data — the fixed point TQT converges to for a
//! static distribution.

use crate::{QuantError, QuantParams, Result};

/// Returns the power-of-two threshold `t = 2^k` (k ∈ [-16, 16]) whose
/// symmetric int8 quantization minimises the MSE over `values`, together with
/// the corresponding [`QuantParams`].
///
/// # Errors
///
/// Returns [`QuantError::EmptyCalibration`] when `values` is empty.
pub fn calibrate_power_of_two(values: &[f32]) -> Result<(f32, QuantParams)> {
    if values.is_empty() {
        return Err(QuantError::EmptyCalibration);
    }
    let mut best_threshold = 1.0f32;
    let mut best_mse = f32::INFINITY;
    for k in -16i32..=16 {
        let threshold = (2.0f32).powi(k);
        let scale = threshold / 127.0;
        let mse: f32 = values
            .iter()
            .map(|&v| {
                let q = (v / scale).round().clamp(-127.0, 127.0);
                let err = v - q * scale;
                err * err
            })
            .sum::<f32>()
            / values.len() as f32;
        if mse < best_mse {
            best_mse = mse;
            best_threshold = threshold;
        }
    }
    Ok((best_threshold, QuantParams { scale: best_threshold / 127.0 }))
}

/// Simple max-abs calibration (non-power-of-two), used where TQT-style
/// clipping is unnecessary (e.g. prototype vectors).
///
/// # Errors
///
/// Returns [`QuantError::EmptyCalibration`] when `values` is empty.
pub fn calibrate_scale(values: &[f32]) -> Result<QuantParams> {
    if values.is_empty() {
        return Err(QuantError::EmptyCalibration);
    }
    let max_abs = values.iter().map(|v| v.abs()).fold(0.0f32, f32::max);
    Ok(QuantParams::from_max_abs(max_abs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_tensor::SeedRng;

    #[test]
    fn empty_calibration_is_rejected() {
        assert!(calibrate_power_of_two(&[]).is_err());
        assert!(calibrate_scale(&[]).is_err());
    }

    #[test]
    fn threshold_is_a_power_of_two() {
        let mut rng = SeedRng::new(0);
        let values: Vec<f32> = (0..512).map(|_| rng.normal_with(0.0, 0.3)).collect();
        let (threshold, params) = calibrate_power_of_two(&values).unwrap();
        let log = threshold.log2();
        assert!((log - log.round()).abs() < 1e-6, "threshold {threshold} not a power of two");
        assert!(params.scale > 0.0);
    }

    #[test]
    fn threshold_tracks_data_range() {
        let small: Vec<f32> = (0..64).map(|i| (i as f32 / 64.0) * 0.01).collect();
        let large: Vec<f32> = (0..64).map(|i| (i as f32 / 64.0) * 10.0).collect();
        let (t_small, _) = calibrate_power_of_two(&small).unwrap();
        let (t_large, _) = calibrate_power_of_two(&large).unwrap();
        assert!(t_small < t_large);
    }

    #[test]
    fn calibrated_quantization_has_low_error() {
        let mut rng = SeedRng::new(7);
        let values: Vec<f32> = (0..1024).map(|_| rng.normal_with(0.0, 1.0)).collect();
        let (_, params) = calibrate_power_of_two(&values).unwrap();
        let mse: f32 = values
            .iter()
            .map(|&v| {
                let q = params.dequantize(params.quantize(v));
                (v - q).powi(2)
            })
            .sum::<f32>()
            / values.len() as f32;
        // int8 on a unit Gaussian: MSE well below 1e-3.
        assert!(mse < 1e-3, "mse {mse}");
    }

    #[test]
    fn max_abs_calibration_covers_range() {
        let params = calibrate_scale(&[-3.0, 2.0, 0.5]).unwrap();
        assert_eq!(params.quantize(3.0), 127);
        assert_eq!(params.quantize(-3.0), -127);
    }
}
