//! Error type for the quant crate.

use ofscil_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error returned by quantization operations.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// The requested bit width is unsupported.
    UnsupportedBits {
        /// The offending bit width.
        bits: u8,
    },
    /// Shapes of quantized operands disagree.
    ShapeMismatch {
        /// Left operand dims.
        left: Vec<usize>,
        /// Right operand dims.
        right: Vec<usize>,
    },
    /// Calibration received no data.
    EmptyCalibration,
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::Tensor(e) => write!(f, "tensor error: {e}"),
            QuantError::UnsupportedBits { bits } => {
                write!(f, "unsupported quantization bit width {bits} (expected 1..=8 or 32)")
            }
            QuantError::ShapeMismatch { left, right } => {
                write!(f, "quantized shape mismatch: {left:?} vs {right:?}")
            }
            QuantError::EmptyCalibration => write!(f, "calibration requires at least one value"),
        }
    }
}

impl Error for QuantError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QuantError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for QuantError {
    fn from(e: TensorError) -> Self {
        QuantError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_bits() {
        let e = QuantError::UnsupportedBits { bits: 13 };
        assert!(e.to_string().contains("13"));
        assert!(QuantError::EmptyCalibration.to_string().contains("calibration"));
    }
}
