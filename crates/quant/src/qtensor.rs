//! Symmetric int8 tensors and integer matrix multiplication.

use crate::{QuantError, Result};
use ofscil_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Symmetric per-tensor quantization parameters: `real ≈ scale * q`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Scale factor mapping integer values back to real values.
    pub scale: f32,
}

impl QuantParams {
    /// Derives parameters from the maximum absolute value to represent.
    /// The scale is clamped away from zero so all-zero tensors stay valid.
    pub fn from_max_abs(max_abs: f32) -> Self {
        QuantParams { scale: (max_abs / 127.0).max(1e-12) }
    }

    /// Quantizes one real value to i8 with saturation.
    pub fn quantize(&self, value: f32) -> i8 {
        (value / self.scale).round().clamp(-127.0, 127.0) as i8
    }

    /// Dequantizes one i8 value.
    pub fn dequantize(&self, value: i8) -> f32 {
        value as f32 * self.scale
    }
}

/// A dense int8 tensor with a shared symmetric scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantTensor {
    data: Vec<i8>,
    dims: Vec<usize>,
    params: QuantParams,
}

impl QuantTensor {
    /// Quantizes a real tensor with the given parameters.
    pub fn quantize(tensor: &Tensor, params: QuantParams) -> Self {
        QuantTensor {
            data: tensor.as_slice().iter().map(|&v| params.quantize(v)).collect(),
            dims: tensor.dims().to_vec(),
            params,
        }
    }

    /// Quantizes a real tensor, deriving the scale from its max-abs value.
    pub fn quantize_auto(tensor: &Tensor) -> Self {
        Self::quantize(tensor, QuantParams::from_max_abs(tensor.max_abs()))
    }

    /// Dequantizes back to a real tensor.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.data.iter().map(|&q| self.params.dequantize(q)).collect(),
            &self.dims,
        )
        .expect("dims match data by construction")
    }

    /// The integer payload.
    pub fn as_i8(&self) -> &[i8] {
        &self.data
    }

    /// The tensor dims.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The quantization parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Storage size in bytes at int8.
    pub fn bytes(&self) -> usize {
        self.data.len()
    }

    /// Integer matrix multiplication `self · other` with i32 accumulation,
    /// returning a real-valued tensor scaled by both operand scales — the
    /// arithmetic performed by a SIMD int8 MAC unit.
    ///
    /// # Errors
    ///
    /// Returns an error when either operand is not a matrix or the inner
    /// dimensions disagree.
    pub fn matmul(&self, other: &QuantTensor) -> Result<Tensor> {
        if self.dims.len() != 2 || other.dims.len() != 2 || self.dims[1] != other.dims[0] {
            return Err(QuantError::ShapeMismatch {
                left: self.dims.clone(),
                right: other.dims.clone(),
            });
        }
        let (m, k) = (self.dims[0], self.dims[1]);
        let n = other.dims[1];
        let mut out = vec![0.0f32; m * n];
        let combined_scale = self.params.scale * other.params.scale;
        for i in 0..m {
            for j in 0..n {
                let mut acc: i32 = 0;
                for kk in 0..k {
                    acc += self.data[i * k + kk] as i32 * other.data[kk * n + j] as i32;
                }
                out[i * n + j] = acc as f32 * combined_scale;
            }
        }
        Ok(Tensor::from_vec(out, &[m, n])?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_tensor::SeedRng;

    #[test]
    fn quantize_round_trip_error_is_bounded() {
        let mut rng = SeedRng::new(0);
        let t = Tensor::from_vec((0..256).map(|_| rng.uniform_range(-2.0, 2.0)).collect(), &[256])
            .unwrap();
        let q = QuantTensor::quantize_auto(&t);
        let back = q.dequantize();
        // Max error is half a quantization step.
        let step = q.params().scale;
        assert!(t.max_abs_diff(&back).unwrap() <= 0.51 * step);
        assert_eq!(q.bytes(), 256);
        assert!(!q.is_empty());
        assert_eq!(q.len(), 256);
    }

    #[test]
    fn saturation_clamps_to_127() {
        let params = QuantParams::from_max_abs(1.0);
        assert_eq!(params.quantize(10.0), 127);
        assert_eq!(params.quantize(-10.0), -127);
        assert_eq!(params.quantize(0.0), 0);
    }

    #[test]
    fn zero_tensor_is_representable() {
        let t = Tensor::zeros(&[8]);
        let q = QuantTensor::quantize_auto(&t);
        assert_eq!(q.dequantize(), t);
    }

    #[test]
    fn integer_matmul_matches_float_matmul() {
        let mut rng = SeedRng::new(3);
        let a = Tensor::from_vec((0..6 * 8).map(|_| rng.uniform_range(-1.0, 1.0)).collect(), &[6, 8])
            .unwrap();
        let b = Tensor::from_vec((0..8 * 5).map(|_| rng.uniform_range(-1.0, 1.0)).collect(), &[8, 5])
            .unwrap();
        let qa = QuantTensor::quantize_auto(&a);
        let qb = QuantTensor::quantize_auto(&b);
        let qc = qa.matmul(&qb).unwrap();
        let c = a.matmul(&b).unwrap();
        // int8 quantization error over an inner dimension of 8 stays small.
        assert!(c.max_abs_diff(&qc).unwrap() < 0.15, "{}", c.max_abs_diff(&qc).unwrap());
    }

    #[test]
    fn matmul_shape_errors() {
        let a = QuantTensor::quantize_auto(&Tensor::ones(&[2, 3]));
        let b = QuantTensor::quantize_auto(&Tensor::ones(&[4, 2]));
        assert!(a.matmul(&b).is_err());
        let v = QuantTensor::quantize_auto(&Tensor::ones(&[3]));
        assert!(v.matmul(&a).is_err());
    }
}
