//! Quantization substrate for the O-FSCIL reproduction.
//!
//! The paper deploys int8-quantized networks (TQT-style power-of-two
//! thresholds trained with a few quantization-aware epochs) and stores class
//! prototypes in the explicit memory at reduced precision — down to 3 bits
//! per element with no accuracy loss (Fig. 3), which is what makes 100
//! prototypes fit in 9.6 kB.
//!
//! This crate provides:
//!
//! * [`QuantParams`] / [`QuantTensor`] — symmetric per-tensor int8
//!   quantization with power-of-two scales and an i8×i8→i32 integer matmul
//!   (the arithmetic a GAP9 cluster core performs),
//! * [`calibrate_power_of_two`] — TQT-style threshold calibration minimising
//!   the quantization error on calibration data,
//! * [`FakeQuant`] and [`quantize_layer_weights`] — quantize–dequantize
//!   simulation used to measure INT8 accuracy of the full models (Table II),
//! * [`PrototypePrecision`] and [`ExplicitMemoryFootprint`] — the
//!   explicit-memory precision-reduction sweep and size accounting of Fig. 3.
//!
//! # Example
//!
//! ```
//! use ofscil_quant::{PrototypePrecision, ExplicitMemoryFootprint};
//!
//! let p = PrototypePrecision::new(3).unwrap();
//! let stored = p.quantize(&[0.5, -0.25, 0.1, 0.0]);
//! assert_eq!(stored.len(), 4);
//! let footprint = ExplicitMemoryFootprint::new(100, 256, 3);
//! assert!((footprint.kilobytes() - 9.6).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibrate;
mod error;
mod fake;
mod prototype;
mod qtensor;

pub use calibrate::{calibrate_power_of_two, calibrate_scale};
pub use error::QuantError;
pub use fake::{quantize_layer_weights, FakeQuant};
pub use prototype::{ExplicitMemoryFootprint, PrototypePrecision};
pub use qtensor::{QuantParams, QuantTensor};

/// Result alias used across the quant crate.
pub type Result<T> = std::result::Result<T, QuantError>;
