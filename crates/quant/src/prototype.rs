//! Explicit-memory prototype precision reduction (paper §V-B and Fig. 3).
//!
//! On GAP9 a class prototype is accumulated over the S shots as a sum of int8
//! feature vectors — a 17-bit integer is sufficient to avoid overflow for
//! d_p = 256 — and then reduced by a bit-shift division to the storage
//! precision. Because the cosine-similarity classifier only depends on the
//! *direction* of the prototype, aggressive reductions (down to 3 bits, even
//! 1 bit = sign) preserve accuracy while shrinking the explicit memory to a
//! few kilobytes.

use crate::{QuantError, Result};
use serde::{Deserialize, Serialize};

/// Quantizer simulating prototype storage at a reduced bit width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrototypePrecision {
    bits: u8,
}

impl PrototypePrecision {
    /// Creates a prototype quantizer for `bits` ∈ {1..=8, 32}; 32 means full
    /// floating-point storage (no reduction).
    ///
    /// # Errors
    ///
    /// Returns an error for unsupported bit widths.
    pub fn new(bits: u8) -> Result<Self> {
        if bits == 32 || (1..=8).contains(&bits) {
            Ok(PrototypePrecision { bits })
        } else {
            Err(QuantError::UnsupportedBits { bits })
        }
    }

    /// The storage bit width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The bit widths swept in the paper's Fig. 3.
    pub fn figure3_sweep() -> Vec<PrototypePrecision> {
        let mut sweep = vec![PrototypePrecision { bits: 32 }];
        sweep.extend((1..=8).rev().map(|bits| PrototypePrecision { bits }));
        sweep
    }

    /// Quantizes a prototype vector to the storage precision and returns the
    /// dequantized values the classifier will actually compare against.
    ///
    /// The direction of the vector is preserved (symmetric scaling by the
    /// max-abs element); at 1 bit only the element signs survive.
    pub fn quantize(&self, prototype: &[f32]) -> Vec<f32> {
        if self.bits == 32 {
            return prototype.to_vec();
        }
        let max_abs = prototype.iter().map(|v| v.abs()).fold(0.0f32, f32::max);
        if max_abs < 1e-12 {
            return prototype.to_vec();
        }
        if self.bits == 1 {
            // Sign-only storage (bipolarised prototype).
            return prototype
                .iter()
                .map(|&v| if v >= 0.0 { max_abs } else { -max_abs })
                .collect();
        }
        let levels = ((1i32 << (self.bits - 1)) - 1) as f32;
        // Pick the clipping threshold (a fraction of max-abs) that minimises
        // the quantization MSE — the static equivalent of the learned TQT
        // threshold, and a good model of the bit-shift division on GAP9 which
        // trades saturation of a few large elements for finer resolution of
        // the bulk of the vector.
        let mut best_scale = max_abs / levels;
        let mut best_mse = f32::INFINITY;
        for clip_ratio in [1.0f32, 0.8, 0.6, 0.45, 0.3, 0.2] {
            let scale = (max_abs * clip_ratio / levels).max(1e-12);
            let mse: f32 = prototype
                .iter()
                .map(|&v| {
                    let q = (v / scale).round().clamp(-levels, levels) * scale;
                    (v - q) * (v - q)
                })
                .sum();
            if mse < best_mse {
                best_mse = mse;
                best_scale = scale;
            }
        }
        prototype
            .iter()
            .map(|&v| (v / best_scale).round().clamp(-levels, levels) * best_scale)
            .collect()
    }

    /// Storage bytes for one prototype of dimension `dim` at this precision.
    pub fn bytes_per_prototype(&self, dim: usize) -> f64 {
        dim as f64 * self.bits as f64 / 8.0
    }
}

/// Size accounting for an explicit memory holding `num_classes` prototypes of
/// dimension `dim` stored at `bits` per element — the x-axis annotations of
/// the paper's Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExplicitMemoryFootprint {
    /// Number of stored class prototypes.
    pub num_classes: usize,
    /// Prototype dimensionality d_p.
    pub dim: usize,
    /// Storage bits per element.
    pub bits: u8,
}

impl ExplicitMemoryFootprint {
    /// Creates a footprint descriptor.
    pub fn new(num_classes: usize, dim: usize, bits: u8) -> Self {
        ExplicitMemoryFootprint { num_classes, dim, bits }
    }

    /// Total storage in bytes.
    pub fn bytes(&self) -> f64 {
        self.num_classes as f64 * self.dim as f64 * self.bits as f64 / 8.0
    }

    /// Total storage in kilobytes (decimal, matching the paper's 9.6 kB).
    pub fn kilobytes(&self) -> f64 {
        self.bytes() / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_tensor::cosine_similarity;
    use ofscil_tensor::SeedRng;

    #[test]
    fn unsupported_bits_rejected() {
        assert!(PrototypePrecision::new(0).is_err());
        assert!(PrototypePrecision::new(16).is_err());
        assert!(PrototypePrecision::new(32).is_ok());
        assert!(PrototypePrecision::new(3).is_ok());
    }

    #[test]
    fn fp32_is_identity() {
        let p = PrototypePrecision::new(32).unwrap();
        let proto = vec![0.5, -0.25, 0.0];
        assert_eq!(p.quantize(&proto), proto);
    }

    #[test]
    fn direction_is_preserved_at_low_precision() {
        let mut rng = SeedRng::new(4);
        let proto: Vec<f32> = (0..256).map(|_| rng.normal()).collect();
        for bits in [8u8, 5, 3, 2] {
            let p = PrototypePrecision::new(bits).unwrap();
            let q = p.quantize(&proto);
            let cos = cosine_similarity(&proto, &q).unwrap();
            // Even 2-bit storage keeps the direction broadly aligned; 3 bits
            // and above stay very close — the Fig. 3 claim.
            let floor = if bits >= 3 { 0.97 } else { 0.85 };
            assert!(cos > floor, "bits {bits}: cosine {cos}");
        }
    }

    #[test]
    fn one_bit_is_sign_only() {
        let p = PrototypePrecision::new(1).unwrap();
        let q = p.quantize(&[0.4, -0.2, 0.0, 1.0]);
        assert_eq!(q.iter().filter(|v| **v > 0.0).count(), 3);
        assert_eq!(q.iter().filter(|v| **v < 0.0).count(), 1);
        // All magnitudes identical.
        let mags: Vec<f32> = q.iter().map(|v| v.abs()).collect();
        assert!(mags.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-6));
    }

    #[test]
    fn zero_prototype_is_unchanged() {
        let p = PrototypePrecision::new(3).unwrap();
        assert_eq!(p.quantize(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn figure3_sweep_order() {
        let sweep = PrototypePrecision::figure3_sweep();
        assert_eq!(sweep.len(), 9);
        assert_eq!(sweep[0].bits(), 32);
        assert_eq!(sweep[1].bits(), 8);
        assert_eq!(sweep.last().unwrap().bits(), 1);
    }

    #[test]
    fn paper_footprint_numbers() {
        // 100 classes × 256 dims × 3 bits = 9.6 kB (paper abstract / Fig. 3).
        let f3 = ExplicitMemoryFootprint::new(100, 256, 3);
        assert!((f3.kilobytes() - 9.6).abs() < 1e-9);
        // 32-bit storage is 102.4 kB, 8-bit is 25.6 kB (Fig. 3 x-axis).
        assert!((ExplicitMemoryFootprint::new(100, 256, 32).kilobytes() - 102.4).abs() < 1e-9);
        assert!((ExplicitMemoryFootprint::new(100, 256, 8).kilobytes() - 25.6).abs() < 1e-9);
        let p = PrototypePrecision::new(3).unwrap();
        assert!((p.bytes_per_prototype(256) - 96.0).abs() < 1e-9);
    }
}
