//! Crash-recovery property suites: random WAL-tail damage must never be
//! fatal and must recover exactly one of the acknowledged prefix states;
//! delta compaction must be replay-equivalent on random op sequences.

use ofscil_core::{ExplicitMemory, OFscilModel};
use ofscil_nn::models::BackboneKind;
use ofscil_serve::{
    encode_explicit_memory, BudgetPolicy, CommitJournal, DeploymentSpec, LearnCommit,
    LearnerRegistry,
};
use ofscil_store::{compact_records, replay, Checkpoint, Store, StoreConfig, WalRecord};
use ofscil_tensor::SeedRng;
use std::path::PathBuf;

const DIM: usize = 16;

fn temp_dir(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ofscil-store-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn registry_with_tenant(seed: u64) -> LearnerRegistry {
    let mut rng = SeedRng::new(seed);
    let registry = LearnerRegistry::new();
    registry
        .register(
            DeploymentSpec::new("t", (8, 8)).with_energy_budget(1e6, BudgetPolicy::Reject),
            OFscilModel::new(BackboneKind::Micro, DIM, &mut rng),
        )
        .unwrap();
    registry
}

fn random_prototype(rng: &mut SeedRng) -> Vec<f32> {
    (0..DIM).map(|_| rng.normal()).collect()
}

fn random_import_snapshot(rng: &mut SeedRng) -> Vec<u8> {
    let mut em = ExplicitMemory::new(DIM);
    for _ in 0..1 + rng.below(3) {
        let class = rng.below(12);
        let proto = random_prototype(rng);
        em.set_prototype(class, &proto).unwrap();
    }
    encode_explicit_memory(&em)
}

/// A seeded random operation stream, returned as the WAL records the store
/// journals for it.
fn random_ops(rng: &mut SeedRng, count: usize) -> Vec<WalRecord> {
    let mut records = Vec::with_capacity(count);
    let mut seq = 0u64;
    let mut spent = 0.0f64;
    let mut budget = Some(1e6f64);
    for _ in 0..count {
        spent += rng.normal().abs() as f64;
        match rng.below(10) {
            0 => {
                budget = Some(budget.unwrap_or(0.0) + 50.0);
                records.push(WalRecord::TopUp { seq, spent_mj: spent, budget_mj: budget });
            }
            1 => {
                seq += 1;
                records.push(WalRecord::Import {
                    seq,
                    snapshot: random_import_snapshot(rng),
                    spent_mj: spent,
                    budget_mj: budget,
                });
            }
            _ => {
                seq += 1;
                let classes: Vec<u64> = {
                    let mut c: Vec<u64> =
                        (0..1 + rng.below(3)).map(|_| rng.below(8) as u64).collect();
                    c.sort_unstable();
                    c.dedup();
                    c
                };
                records.push(WalRecord::Learn {
                    seq,
                    total_classes: 1 + rng.below(8) as u64,
                    updates: classes
                        .into_iter()
                        .map(|class| (class, random_prototype(rng)))
                        .collect(),
                    spent_mj: spent,
                    budget_mj: budget,
                });
            }
        }
    }
    records
}

/// Journals pre-built records through the store's public journal surface.
fn journal_records(store: &Store, records: &[WalRecord]) {
    for record in records {
        match record {
            WalRecord::Learn { seq, total_classes, updates, spent_mj, budget_mj } => {
                let commit = LearnCommit {
                    deployment: "t".into(),
                    seq: *seq,
                    updates: updates
                        .iter()
                        .map(|(class, proto)| (*class as usize, proto.clone()))
                        .collect(),
                    total_classes: *total_classes as usize,
                };
                store.journal_learn(&commit, *spent_mj, *budget_mj).unwrap();
            }
            WalRecord::Import { seq, snapshot, spent_mj, budget_mj } => {
                store.journal_import("t", *seq, snapshot, *spent_mj, *budget_mj).unwrap();
            }
            WalRecord::TopUp { seq, spent_mj, budget_mj } => {
                store.journal_top_up("t", *seq, *spent_mj, *budget_mj).unwrap();
            }
        }
    }
}

/// Bit-exact comparison key of a replayed state.
fn state_key(state: &ofscil_store::DeploymentState) -> (Vec<u8>, u64, u64, Option<u64>) {
    (
        state.snapshot.clone(),
        state.seq,
        state.spent_mj.to_bits(),
        state.budget_mj.map(f64::to_bits),
    )
}

#[test]
fn random_tail_damage_recovers_an_acknowledged_prefix_bit_exactly() {
    let dir = temp_dir("tail-damage");
    let registry = registry_with_tenant(7);
    // A huge checkpoint interval keeps every record in the WAL, so damage
    // anywhere in the op stream is damage to the log, not a checkpoint.
    let config = StoreConfig::default()
        .with_checkpoint_interval(u64::MAX)
        .with_compact_min_records(u64::MAX);
    let store = Store::open_with(&dir, config.clone()).unwrap();
    store.bootstrap(&registry).unwrap();

    let mut rng = SeedRng::new(42);
    let records = random_ops(&mut rng, 24);
    journal_records(&store, &records);
    drop(store);

    // Every state the journal acknowledged, in order: damage at any point
    // must recover exactly one of these, bit for bit.
    let ckpt0 = Checkpoint {
        epoch: 0,
        seq: 0,
        spent_mj: 0.0,
        budget_mj: Some(1e6),
        snapshot: registry.snapshot("t").unwrap(),
    };
    let prefix_states: Vec<_> = (0..=records.len())
        .map(|k| state_key(&replay(&ckpt0, &records[..k]).unwrap()))
        .collect();

    let wal_src = dir.join("t.wal");
    let ckpt_src = dir.join("t.ckpt");
    let pristine_wal = std::fs::read(&wal_src).unwrap();
    let pristine_ckpt = std::fs::read(&ckpt_src).unwrap();

    let mut distinct = std::collections::HashSet::new();
    for trial in 0..60u64 {
        let trial_dir = temp_dir(&format!("tail-damage-trial-{trial}"));
        std::fs::create_dir_all(&trial_dir).unwrap();
        std::fs::write(trial_dir.join("t.ckpt"), &pristine_ckpt).unwrap();
        let mut damaged = pristine_wal.clone();
        // Random damage past the file header: truncation (a torn write) or
        // a flipped byte (bit rot); both must truncate recovery to the
        // intact prefix, never fail.
        let offset = 8 + rng.below(damaged.len() - 8);
        if rng.below(2) == 0 {
            damaged.truncate(offset);
        } else {
            let bit = rng.below(8) as u32;
            damaged[offset] ^= 1u8 << bit;
        }
        std::fs::write(trial_dir.join("t.wal"), &damaged).unwrap();

        let reopened = Store::open_with(&trial_dir, config.clone())
            .expect("tail damage must never be fatal");
        let state = reopened.latest_state("t").unwrap();
        let key = state_key(&state);
        let position = prefix_states.iter().position(|s| *s == key);
        assert!(
            position.is_some(),
            "trial {trial}: recovered state (seq {}) matches no acknowledged prefix",
            state.seq
        );
        distinct.insert(position.unwrap());

        // The repaired log accepts fresh appends and a full recovery into a
        // fresh registry restores the same state bit-exactly.
        let fresh = registry_with_tenant(7);
        let reports = reopened.recover(&fresh).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(fresh.snapshot("t").unwrap(), state.snapshot);
        assert_eq!(fresh.snapshot_with_seq("t").unwrap().0, state.seq);
        let (spent, budget) = fresh.energy_state("t").unwrap();
        assert_eq!(spent.to_bits(), state.spent_mj.to_bits());
        assert_eq!(budget.map(f64::to_bits), state.budget_mj.map(f64::to_bits));

        std::fs::remove_dir_all(&trial_dir).unwrap();
    }
    // Sanity: the damage actually exercised different prefixes, not just
    // "everything survived" or "everything was wiped".
    assert!(distinct.len() > 5, "only {} distinct prefixes hit", distinct.len());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_is_replay_equivalent_on_random_op_sequences() {
    let mut rng = SeedRng::new(1234);
    let ckpt = Checkpoint {
        epoch: 0,
        seq: 0,
        spent_mj: 0.0,
        budget_mj: None,
        snapshot: encode_explicit_memory(&ExplicitMemory::new(DIM)),
    };
    for round in 0..100 {
        let count = 1 + rng.below(40);
        let records = random_ops(&mut rng, count);
        let compacted = compact_records(&records);
        assert!(
            compacted.len() <= records.len(),
            "round {round}: compaction grew the log ({} -> {})",
            records.len(),
            compacted.len()
        );
        let full = replay(&ckpt, &records).unwrap();
        let short = replay(&ckpt, &compacted).unwrap();
        assert_eq!(
            state_key(&full),
            state_key(&short),
            "round {round}: compacted replay diverged from full replay"
        );
    }
}

#[test]
fn checkpointing_and_compaction_preserve_the_replayed_state_on_disk() {
    // The same op stream journaled through three differently-tuned stores
    // (never checkpoint, checkpoint every 4 records, aggressive compaction)
    // must recover identical state after reopen.
    let mut rng = SeedRng::new(99);
    let records = random_ops(&mut rng, 30);

    let mut keys = Vec::new();
    for (tag, config) in [
        (
            "never",
            StoreConfig::default()
                .with_checkpoint_interval(u64::MAX)
                .with_compact_min_records(u64::MAX),
        ),
        ("often", StoreConfig::default().with_checkpoint_interval(4)),
        (
            "compacting",
            StoreConfig::default()
                .with_checkpoint_interval(u64::MAX)
                .with_compact_min_records(1),
        ),
    ] {
        let dir = temp_dir(&format!("tuning-{tag}"));
        let registry = registry_with_tenant(3);
        let store = Store::open_with(&dir, config).unwrap();
        store.bootstrap(&registry).unwrap();
        journal_records(&store, &records);
        if tag == "compacting" {
            assert!(store.maintenance().unwrap() > 0, "compaction should have run");
        }
        drop(store);

        let reopened = Store::open(&dir).unwrap();
        keys.push((tag, state_key(&reopened.latest_state("t").unwrap())));
        std::fs::remove_dir_all(&dir).unwrap();
    }
    assert_eq!(keys[0].1, keys[1].1, "checkpointing changed the recovered state");
    assert_eq!(keys[0].1, keys[2].1, "compaction changed the recovered state");
}

#[test]
fn stale_wal_generation_is_discarded_after_a_checkpoint_crash_window() {
    // Simulate a crash between "new checkpoint renamed" and "WAL truncated":
    // the old-generation WAL survives next to the newer checkpoint. Its
    // records are all folded into the checkpoint already — replaying them
    // (especially meter-only top-ups, which carry no distinguishing seq)
    // would regress the recovered state. The epoch pairing detects and
    // discards them.
    let dir = temp_dir("crash-window");
    let registry = registry_with_tenant(21);
    let store = Store::open_with(
        &dir,
        StoreConfig::default()
            .with_checkpoint_interval(u64::MAX)
            .with_compact_min_records(u64::MAX),
    )
    .unwrap();
    store.bootstrap(&registry).unwrap();
    let mut rng = SeedRng::new(8);
    let records = random_ops(&mut rng, 12);
    journal_records(&store, &records);

    // Keep the pre-checkpoint WAL, checkpoint (truncates it), then put the
    // stale WAL back — the crash window's on-disk picture.
    let wal_path = dir.join("t.wal");
    let stale_wal = std::fs::read(&wal_path).unwrap();
    let expected = state_key(&store.latest_state("t").unwrap());
    store.checkpoint("t").unwrap();
    drop(store);
    std::fs::write(&wal_path, &stale_wal).unwrap();

    let reopened = Store::open(&dir).unwrap();
    assert_eq!(
        state_key(&reopened.latest_state("t").unwrap()),
        expected,
        "stale-generation WAL records regressed the recovered state"
    );
    let stats = reopened.durability_stats("t").unwrap();
    assert_eq!(stats.wal_records, 0, "stale records must be discarded, not replayed");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bootstrap_reseeds_a_store_the_registry_has_outrun() {
    // A promoted follower re-using an old store directory: the registry's
    // live history (say seq 5) ran past the store's durable state (seq 1).
    // Recovery must not move the registry backwards, and — crucially — the
    // store must not keep its stale base under future appends: bootstrap
    // re-baselines the checkpoint at the live state.
    let dir = temp_dir("reseed");
    let registry = registry_with_tenant(33);
    let store = Store::open(&dir).unwrap();
    store.bootstrap(&registry).unwrap();
    let mut rng = SeedRng::new(4);
    let records: Vec<WalRecord> = random_ops(&mut rng, 6)
        .into_iter()
        .filter(|r| matches!(r, WalRecord::Learn { .. }))
        .take(1)
        .collect();
    journal_records(&store, &records);
    drop(store);

    // The "follower" has replicated far past the store's single record.
    let ahead = registry_with_tenant(33);
    let proto: Vec<f32> = (0..DIM).map(|i| i as f32 / 8.0).collect();
    for class in 0..5 {
        ahead.apply_prototype_updates("t", &[(class, proto.clone())]).unwrap();
    }
    let live_seq = ahead.snapshot_with_seq("t").unwrap().0;
    assert!(live_seq > records[0].seq());

    let store = Store::open(&dir).unwrap();
    let reports = store.bootstrap(&ahead).unwrap();
    assert!(reports.is_empty(), "nothing recovers backwards: {reports:?}");
    // The registry kept its live state; the store now baselines it exactly.
    assert_eq!(ahead.snapshot_with_seq("t").unwrap().0, live_seq);
    let state = store.latest_state("t").unwrap();
    assert_eq!(state.seq, live_seq);
    assert_eq!(state.snapshot, ahead.snapshot("t").unwrap());

    // Future journaling extends the fresh base, not the stale one.
    store
        .journal_learn(
            &LearnCommit {
                deployment: "t".into(),
                seq: live_seq + 1,
                updates: vec![(9, proto.clone())],
                total_classes: 6,
            },
            1.0,
            None,
        )
        .unwrap();
    assert_eq!(store.latest_state("t").unwrap().seq, live_seq + 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durability_counters_track_log_growth_checkpoints_and_compactions() {
    let dir = temp_dir("counters");
    let registry = registry_with_tenant(5);
    let store = Store::open_with(
        &dir,
        StoreConfig::default().with_checkpoint_interval(8).with_compact_min_records(3),
    )
    .unwrap();
    store.bootstrap(&registry).unwrap();

    let mut rng = SeedRng::new(11);
    // Five learns: below the checkpoint interval, above the compaction one.
    let records: Vec<WalRecord> = random_ops(&mut rng, 32)
        .into_iter()
        .filter(|r| matches!(r, WalRecord::Learn { .. }))
        .take(5)
        .collect();
    journal_records(&store, &records);

    let stats = store.durability_stats("t").unwrap();
    assert_eq!(stats.wal_records, 5);
    assert!(stats.wal_bytes > 0);
    assert_eq!(stats.compactions, 0);
    assert_eq!(stats.last_checkpoint_seq, 0);

    store.maintenance().unwrap();
    let stats = store.durability_stats("t").unwrap();
    assert_eq!(stats.compactions, 1);
    assert!(stats.wal_records < 5, "compaction should shrink the log");

    let seq = store.checkpoint("t").unwrap();
    let stats = store.durability_stats("t").unwrap();
    assert_eq!(stats.last_checkpoint_seq, seq);
    assert_eq!(stats.wal_records, 0, "checkpoint truncates the WAL");

    assert!(store.durability_stats("ghost").is_none());
    let _ = std::fs::remove_dir_all(&dir);
}
