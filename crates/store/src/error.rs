//! Error type of the durable store.

use ofscil_serve::ServeError;
use std::error::Error;
use std::fmt;
use std::io;

/// Error returned by the WAL + checkpoint store.
///
/// A **torn or corrupt WAL tail is deliberately not an error**: recovery
/// truncates the log at the first damaged record and replays the intact
/// prefix (the torn record's commit was never acknowledged as durable). The
/// variants here cover failures that cannot be repaired that way — I/O
/// errors, a damaged checkpoint, or state that contradicts itself.
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io(io::Error),
    /// A checkpoint file is damaged beyond the torn-tail repair the WAL
    /// enjoys: without its full-snapshot base the log cannot be replayed.
    CorruptCheckpoint {
        /// Deployment whose checkpoint is damaged.
        deployment: String,
        /// What exactly failed to parse.
        detail: String,
    },
    /// A log file's fixed header (magic/version) is not a store log.
    BadLogHeader {
        /// Path of the offending file.
        path: String,
        /// What exactly is wrong with the header.
        detail: String,
    },
    /// The deployment has no persisted state and was never attached.
    NotAttached(String),
    /// A previous WAL append for this deployment failed, so the log is
    /// missing an acknowledged-in-memory commit. Further journaling is
    /// refused — appending deltas on a missing base would replay to a
    /// plausible-but-wrong state — until the process restarts (recovery
    /// then restores the last durable prefix; the gap's commits were
    /// reported as failed to their clients).
    Gapped(String),
    /// Encoding or decoding an explicit-memory snapshot failed (the store
    /// reuses the `ofscil_serve` snapshot codec for checkpoints and replay).
    Codec(ServeError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::CorruptCheckpoint { deployment, detail } => {
                write!(f, "checkpoint for deployment {deployment:?} is corrupt: {detail}")
            }
            StoreError::BadLogHeader { path, detail } => {
                write!(f, "log file {path} has a bad header: {detail}")
            }
            StoreError::NotAttached(name) => write!(
                f,
                "deployment {name:?} is not attached to the store; call Store::attach \
                 (or bootstrap) before journaling"
            ),
            StoreError::Gapped(name) => write!(
                f,
                "deployment {name:?}'s journal is gapped by an earlier failed append; \
                 journaling is refused until the process restarts and recovers the \
                 durable prefix"
            ),
            StoreError::Codec(e) => write!(f, "snapshot codec error during replay: {e}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<ServeError> for StoreError {
    fn from(e: ServeError) -> Self {
        StoreError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e: StoreError = io::Error::from(io::ErrorKind::NotFound).into();
        assert!(e.source().is_some());
        let e = StoreError::NotAttached("t".into());
        assert!(e.to_string().contains("attach"));
        assert!(e.source().is_none());
        let e = StoreError::Gapped("t".into());
        assert!(e.to_string().contains("gapped"));
        assert!(e.source().is_none());
        let e = StoreError::CorruptCheckpoint { deployment: "t".into(), detail: "magic".into() };
        assert!(e.to_string().contains("corrupt"));
        let e: StoreError = ServeError::InvalidRequest("dim".into()).into();
        assert!(matches!(e, StoreError::Codec(_)));
        assert!(e.source().is_some());
        let e = StoreError::BadLogHeader { path: "x.wal".into(), detail: "short".into() };
        assert!(e.to_string().contains("x.wal"));
    }
}
