//! Durable spill for the observability store: sealed `ObsStore` chunks
//! written through the [`OpLog`] record codec, GC'd by epoch into rollup
//! records, rehydrated on restart.
//!
//! The file at [`SPILL_FILE`] is an ordinary store record log — same magic,
//! same per-record FNV-1a checksum, same torn-tail truncation on open — so a
//! kill mid-spill costs at most the unacknowledged tail record. Two record
//! kinds live in it:
//!
//! * **chunk** ([`REC_CHUNK`]): one sealed, time-sorted chunk, row by row,
//! * **rollup** ([`REC_ROLLUP`]): one per-minute [`Rollup`] cell — what a
//!   chunk becomes when the spill's byte budget evicts it. Eviction folds
//!   the oldest chunk records into rollup cells and rewrites the log under
//!   a bumped header epoch (temporary sibling + rename, like every other
//!   compaction in this crate), so raw history ages into downsampled
//!   history instead of vanishing.
//!
//! [`ObsSpill`] implements `ofscil_obs`'s `ChunkSpill` hook, swallowing its
//! own I/O errors into a counter — observability durability must never fail
//! the serving path that triggered a seal.

use crate::error::StoreError;
use crate::oplog::{OpLog, RawRecord};
use ofscil_obs::{
    ChunkSpill, Event, EventKind, ObsCursor, ObsStore, Rollup, Summary, ROLLUP_BUCKET_US,
};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Mutex;

/// File name of the spill log inside a store root.
pub const SPILL_FILE: &str = "obs.spill";

/// Record kind: one sealed chunk of raw events.
pub const REC_CHUNK: u8 = 1;

/// Record kind: one per-minute rollup cell compacted from evicted chunks.
pub const REC_ROLLUP: u8 = 2;

/// Default byte budget of the spill file before eviction folds the oldest
/// chunks into rollup records.
pub const DEFAULT_SPILL_BUDGET: u64 = 16 * 1024 * 1024;

/// kind (1) + length (4) + checksum (4) — [`OpLog`]'s framing overhead,
/// mirrored here for byte accounting of the in-memory record mirror.
const RECORD_OVERHEAD: u64 = 9;
const HEADER_LEN: u64 = 16;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    put_u16(out, bytes.len().min(u16::MAX as usize) as u16);
    out.extend_from_slice(&bytes[..bytes.len().min(u16::MAX as usize)]);
}

fn put_summary(out: &mut Vec<u8>, s: &Summary) {
    put_u64(out, s.min.to_bits());
    put_u64(out, s.max.to_bits());
    put_u64(out, s.sum.to_bits());
    put_u64(out, s.count);
}

/// A decode cursor over one record body; every taker returns `None` on
/// underrun so a short or foreign body skips cleanly instead of panicking.
struct Cursor<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, off: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.off.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.off..end];
        self.off = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    fn summary(&mut self) -> Option<Summary> {
        Some(Summary {
            min: f64::from_bits(self.u64()?),
            max: f64::from_bits(self.u64()?),
            sum: f64::from_bits(self.u64()?),
            count: self.u64()?,
        })
    }

    fn done(&self) -> bool {
        self.off == self.bytes.len()
    }
}

fn encode_event(out: &mut Vec<u8>, event: &Event) {
    put_string(out, &event.deployment);
    out.push(event.kind.code());
    put_u64(out, event.seq);
    put_u64(out, event.time_us);
    put_u64(out, event.energy_mj.to_bits());
    put_u64(out, event.latency_us);
    put_u32(out, event.accuracy.to_bits());
    put_u64(out, event.wal_bytes);
}

fn decode_event(cursor: &mut Cursor) -> Option<Event> {
    let deployment = cursor.string()?;
    let kind = EventKind::from_code(cursor.u8()?)?;
    Some(Event {
        deployment,
        kind,
        seq: cursor.u64()?,
        time_us: cursor.u64()?,
        energy_mj: f64::from_bits(cursor.u64()?),
        latency_us: cursor.u64()?,
        accuracy: f32::from_bits(cursor.u32()?),
        wal_bytes: cursor.u64()?,
    })
}

fn encode_chunk(events: &[Event]) -> Vec<u8> {
    let mut body = Vec::with_capacity(16 + events.len() * 64);
    put_u32(&mut body, events.len() as u32);
    for event in events {
        encode_event(&mut body, event);
    }
    body
}

fn decode_chunk(body: &[u8]) -> Option<Vec<Event>> {
    let mut cursor = Cursor::new(body);
    let count = cursor.u32()? as usize;
    // A length claim bigger than the body could even frame is corrupt.
    if count > body.len() {
        return None;
    }
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        events.push(decode_event(&mut cursor)?);
    }
    cursor.done().then_some(events)
}

fn encode_rollup(rollup: &Rollup) -> Vec<u8> {
    let mut body = Vec::with_capacity(128);
    put_u64(&mut body, rollup.bucket_us);
    put_string(&mut body, &rollup.deployment);
    body.push(rollup.kind.code());
    put_u64(&mut body, rollup.count);
    put_summary(&mut body, &rollup.energy_mj);
    put_summary(&mut body, &rollup.latency_us);
    put_summary(&mut body, &rollup.accuracy);
    body
}

fn decode_rollup(body: &[u8]) -> Option<Rollup> {
    let mut cursor = Cursor::new(body);
    let bucket_us = cursor.u64()?;
    let deployment = cursor.string()?;
    let kind = EventKind::from_code(cursor.u8()?)?;
    let rollup = Rollup {
        bucket_us,
        deployment,
        kind,
        count: cursor.u64()?,
        energy_mj: cursor.summary()?,
        latency_us: cursor.summary()?,
        accuracy: cursor.summary()?,
    };
    cursor.done().then_some(rollup)
}

/// What a previous life left in the spill file, decoded and ready to adopt.
#[derive(Debug, Default)]
pub struct SpillRecovery {
    /// Raw chunks still resident in the spill, oldest first.
    pub chunks: Vec<Vec<Event>>,
    /// Rollup cells the spill's own GC compacted evicted chunks into.
    pub rollups: Vec<Rollup>,
    /// Intact log records whose *body* failed to decode (foreign kind or
    /// malformed payload) — skipped, not fatal.
    pub corrupt_records: u64,
    /// The log's generation epoch (bumped by every spill GC).
    pub epoch: u64,
}

impl SpillRecovery {
    /// Total raw events across the recovered chunks.
    pub fn events(&self) -> u64 {
        self.chunks.iter().map(|c| c.len() as u64).sum()
    }

    /// Adopts everything into `store`: rollup cells first (the oldest
    /// history), then the raw chunks. After this, queries answer as if the
    /// previous process had never died — minus whatever sat unsealed in its
    /// active chunk when it was killed.
    pub fn rehydrate_into(&self, store: &ObsStore) {
        for rollup in &self.rollups {
            store.adopt_rollup(rollup);
        }
        for chunk in &self.chunks {
            store.adopt_chunk(chunk);
        }
    }

    /// Raw spilled events **strictly after** `cursor`, in `(time_us, seq)`
    /// order — the durable half of a resume: a subscriber reconnecting with
    /// a cursor back-fills this range from the spill, then splices onto the
    /// live tail. Uses the same strictly-after bound as
    /// `ObsStore::subscribe`, so spill-served and store-served back-fill
    /// partition identically against a live stream.
    pub fn events_after(&self, cursor: ObsCursor) -> Vec<Event> {
        let mut events: Vec<Event> = self
            .chunks
            .iter()
            .flatten()
            .filter(|event| event.order_key() > cursor.key())
            .cloned()
            .collect();
        events.sort_by_key(Event::order_key);
        events
    }

    /// Rollup cells whose minute bucket **could** hold rows after `cursor`
    /// — every cell whose bucket ends past the cursor's time. Cells keep no
    /// per-row sequence numbers, so a bucket straddling the cursor is
    /// returned whole; a consumer splicing rollups under raw events keeps
    /// exactness through `ObsResult::merge`'s dedup, same as the
    /// auto-resolution query path.
    pub fn rollups_after(&self, cursor: ObsCursor) -> Vec<Rollup> {
        self.rollups
            .iter()
            .filter(|cell| cell.bucket_us.saturating_add(ROLLUP_BUCKET_US) > cursor.time_us)
            .cloned()
            .collect()
    }
}

/// A point-in-time snapshot of the spill's health.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Chunk records currently in the log.
    pub chunk_records: u64,
    /// Rollup records currently in the log.
    pub rollup_records: u64,
    /// Log file size in bytes (header included).
    pub bytes: u64,
    /// The log's generation epoch (bumped by every GC rewrite).
    pub epoch: u64,
    /// Chunk records evicted into rollups so far (this process).
    pub gc_chunks: u64,
    /// Spill or GC I/O failures swallowed so far (this process). The hook
    /// must never fail the serving path, so errors land here.
    pub io_errors: u64,
}

#[derive(Debug)]
struct SpillInner {
    log: OpLog,
    /// In-memory mirror of the log's records, in file order — [`OpLog`]
    /// hands its records out once at open, so GC keeps its own copy to
    /// rewrite from. Bounded by the byte budget, same as the file.
    mirror: Vec<RawRecord>,
    byte_budget: u64,
    gc_chunks: u64,
    io_errors: u64,
}

impl SpillInner {
    fn mirror_bytes(&self) -> u64 {
        HEADER_LEN
            + self
                .mirror
                .iter()
                .map(|(_, body)| body.len() as u64 + RECORD_OVERHEAD)
                .sum::<u64>()
    }

    /// Folds the oldest chunk records into rollup cells until the log fits
    /// the budget, then rewrites the file under a bumped epoch. Rollup
    /// records always survive — they are the already-compacted form.
    fn gc(&mut self) -> Result<(), StoreError> {
        if self.mirror_bytes() <= self.byte_budget {
            return Ok(());
        }
        let mut cells: BTreeMap<(u64, String, u8), Rollup> = BTreeMap::new();
        let mut absorb = |rollup: Rollup| match cells.entry(rollup.key()) {
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                slot.get_mut().absorb(&rollup)
            }
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(rollup);
            }
        };
        let mut chunks: Vec<Vec<u8>> = Vec::new();
        for (kind, body) in &self.mirror {
            match *kind {
                REC_ROLLUP => {
                    if let Some(rollup) = decode_rollup(body) {
                        absorb(rollup);
                    }
                }
                _ => chunks.push(body.clone()),
            }
        }
        // Evict oldest-first until the *surviving* records fit. The rollup
        // side only grows by bounded cells, so this converges.
        let mut evicted = 0usize;
        let mut remaining_bytes: u64 =
            chunks.iter().map(|b| b.len() as u64 + RECORD_OVERHEAD).sum();
        while evicted < chunks.len() && HEADER_LEN + remaining_bytes > self.byte_budget {
            remaining_bytes -= chunks[evicted].len() as u64 + RECORD_OVERHEAD;
            if let Some(events) = decode_chunk(&chunks[evicted]) {
                for event in &events {
                    let key = (Rollup::bucket_of(event.time_us), event.deployment.clone(),
                        event.kind.code());
                    match cells.entry(key) {
                        std::collections::btree_map::Entry::Occupied(mut slot) => {
                            slot.get_mut().observe(event)
                        }
                        std::collections::btree_map::Entry::Vacant(slot) => {
                            let mut cell = Rollup::new(
                                Rollup::bucket_of(event.time_us),
                                &event.deployment,
                                event.kind,
                            );
                            cell.observe(event);
                            slot.insert(cell);
                        }
                    }
                }
            }
            evicted += 1;
        }
        self.gc_chunks += evicted as u64;
        let mut records: Vec<RawRecord> =
            cells.values().map(|cell| (REC_ROLLUP, encode_rollup(cell))).collect();
        records.extend(chunks.into_iter().skip(evicted).map(|body| (REC_CHUNK, body)));
        let epoch = self.log.epoch().wrapping_add(1);
        self.log.rewrite_with_epoch(&records, epoch)?;
        self.mirror = records;
        Ok(())
    }
}

/// The durable side of an observability pipeline: an [`OpLog`]-backed spill
/// file that sealed chunks are appended to, with budget-driven compaction
/// into rollup records. Implements `ofscil_obs`'s [`ChunkSpill`] hook.
#[derive(Debug)]
pub struct ObsSpill {
    inner: Mutex<SpillInner>,
}

impl ObsSpill {
    /// Opens (or creates) the spill at `path` with the
    /// [default budget](DEFAULT_SPILL_BUDGET), returning the handle and
    /// everything a previous life spilled (torn tail already truncated by
    /// the log open).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] for filesystem failures and
    /// [`StoreError::BadLogHeader`] when the file is not a store log.
    pub fn open(path: &Path) -> Result<(ObsSpill, SpillRecovery), StoreError> {
        ObsSpill::open_with(path, DEFAULT_SPILL_BUDGET)
    }

    /// Like [`ObsSpill::open`] with an explicit byte budget (clamped ≥ 1).
    ///
    /// # Errors
    ///
    /// See [`ObsSpill::open`].
    pub fn open_with(
        path: &Path,
        byte_budget: u64,
    ) -> Result<(ObsSpill, SpillRecovery), StoreError> {
        let (log, records) = OpLog::open(path)?;
        let mut recovery = SpillRecovery { epoch: log.epoch(), ..SpillRecovery::default() };
        let mut mirror = Vec::with_capacity(records.len());
        for (kind, body) in records {
            let ok = match kind {
                REC_CHUNK => match decode_chunk(&body) {
                    Some(events) => {
                        recovery.chunks.push(events);
                        true
                    }
                    None => false,
                },
                REC_ROLLUP => match decode_rollup(&body) {
                    Some(rollup) => {
                        recovery.rollups.push(rollup);
                        true
                    }
                    None => false,
                },
                _ => false,
            };
            if ok {
                mirror.push((kind, body));
            } else {
                recovery.corrupt_records += 1;
            }
        }
        let spill = ObsSpill {
            inner: Mutex::new(SpillInner {
                log,
                mirror,
                byte_budget: byte_budget.max(1),
                gc_chunks: 0,
                io_errors: 0,
            }),
        };
        Ok((spill, recovery))
    }

    /// A snapshot of the spill's counters.
    pub fn stats(&self) -> SpillStats {
        let inner = self.inner.lock().expect("obs spill lock");
        let chunk_records =
            inner.mirror.iter().filter(|(kind, _)| *kind == REC_CHUNK).count() as u64;
        SpillStats {
            chunk_records,
            rollup_records: inner.mirror.len() as u64 - chunk_records,
            bytes: inner.log.bytes(),
            epoch: inner.log.epoch(),
            gc_chunks: inner.gc_chunks,
            io_errors: inner.io_errors,
        }
    }
}

impl ChunkSpill for ObsSpill {
    fn spill_chunk(&self, events: &[Event]) {
        let body = encode_chunk(events);
        let mut inner = self.inner.lock().expect("obs spill lock");
        match inner.log.append(REC_CHUNK, &body) {
            Ok(()) => inner.mirror.push((REC_CHUNK, body)),
            Err(_) => {
                inner.io_errors += 1;
                return;
            }
        }
        if inner.gc().is_err() {
            inner.io_errors += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_obs::{ObsConfig, ObsQuery, Resolution};
    use std::fs::OpenOptions;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("ofscil-obs-spill-{}-{tag}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn event(deployment: &str, t: u64, seq: u64) -> Event {
        Event::new(EventKind::Infer, deployment)
            .with_time_us(t)
            .with_seq(seq)
            .with_energy_mj(0.25)
            .with_latency_us(100)
    }

    #[test]
    fn spill_reopen_rehydrate_roundtrip() {
        let path = temp_path("roundtrip");
        {
            let (spill, recovery) = ObsSpill::open(&path).unwrap();
            assert_eq!(recovery.events(), 0);
            spill.spill_chunk(&[event("t", 10, 0), event("t", 20, 1)]);
            spill.spill_chunk(&[event("u", 30, 2)]);
            assert_eq!(spill.stats().chunk_records, 2);
        }
        let (_spill, recovery) = ObsSpill::open(&path).unwrap();
        assert_eq!(recovery.chunks.len(), 2);
        assert_eq!(recovery.events(), 3);
        assert_eq!(recovery.corrupt_records, 0);
        // NaN accuracy survives the bit-exact codec.
        assert!(recovery.chunks[0][0].accuracy.is_nan());

        let store = ObsStore::new(ObsConfig::default());
        recovery.rehydrate_into(&store);
        let result = store.query(&ObsQuery::all());
        assert_eq!(result.aggregates.matched, 3);
        assert_eq!(result.events.iter().map(|e| e.time_us).collect::<Vec<_>>(), [10, 20, 30]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_loses_only_the_last_chunk() {
        let path = temp_path("torn");
        {
            let (spill, _) = ObsSpill::open(&path).unwrap();
            spill.spill_chunk(&[event("t", 10, 0)]);
            spill.spill_chunk(&[event("t", 20, 1)]);
        }
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);
        let (spill, recovery) = ObsSpill::open(&path).unwrap();
        assert_eq!(recovery.chunks.len(), 1);
        assert_eq!(recovery.chunks[0][0].time_us, 10);
        // The repaired spill accepts fresh chunks cleanly.
        spill.spill_chunk(&[event("t", 30, 2)]);
        assert_eq!(spill.stats().chunk_records, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn budget_gc_folds_oldest_chunks_into_rollups_and_bumps_epoch() {
        let path = temp_path("gc");
        // ~8 events/chunk at ~50 bytes each: a 2 KiB budget holds a few
        // chunks, then eviction starts.
        let (spill, _) = ObsSpill::open_with(&path, 2048).unwrap();
        let mut appended = 0u64;
        for chunk in 0..20u64 {
            let events: Vec<Event> =
                (0..8).map(|i| event("t", chunk * 1_000 + i, appended + i)).collect();
            appended += 8;
            spill.spill_chunk(&events);
        }
        let stats = spill.stats();
        assert_eq!(stats.io_errors, 0);
        assert!(stats.gc_chunks > 0, "budget never triggered GC");
        assert!(stats.epoch > 0, "GC must bump the log epoch");
        assert!(stats.bytes <= 2048 + 1024, "log failed to shrink near budget");
        assert!(stats.rollup_records > 0);
        drop(spill);

        // Nothing was lost: chunks + rollups still account for every event.
        let (_spill, recovery) = ObsSpill::open_with(&path, 2048).unwrap();
        assert_eq!(recovery.corrupt_records, 0);
        let rolled: u64 = recovery.rollups.iter().map(|r| r.count).sum();
        assert_eq!(rolled + recovery.events(), appended);
        let store = ObsStore::new(ObsConfig::default());
        recovery.rehydrate_into(&store);
        let result =
            store.query(&ObsQuery::all().with_resolution(Resolution::Rollup));
        assert_eq!(result.aggregates.matched, appended);
        assert_eq!(result.aggregates.energy_mj.sum, appended as f64 * 0.25);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cursor_ranged_reads_partition_strictly_after() {
        let path = temp_path("cursor");
        {
            let (spill, _) = ObsSpill::open(&path).unwrap();
            // Out-of-order chunks: the ranged read must re-sort globally.
            spill.spill_chunk(&[event("t", 10, 0), event("t", 30, 2)]);
            spill.spill_chunk(&[event("t", 20, 1), event("t", 30, 3)]);
        }
        let (_spill, recovery) = ObsSpill::open(&path).unwrap();

        // A cursor at (30, 2): the equal row is consumed history, the
        // same-time higher-seq row is not.
        let after = recovery.events_after(ObsCursor { time_us: 30, seq: 2 });
        assert_eq!(
            after.iter().map(|e| (e.time_us, e.seq)).collect::<Vec<_>>(),
            [(30, 3)]
        );
        // From the start everything comes back, globally ordered.
        let all = recovery.events_after(ObsCursor::start());
        assert_eq!(
            all.iter().map(|e| (e.time_us, e.seq)).collect::<Vec<_>>(),
            [(10, 0), (20, 1), (30, 2), (30, 3)]
        );
        // Past the end: nothing.
        assert!(recovery.events_after(ObsCursor { time_us: 31, seq: 0 }).is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rollups_after_keeps_straddling_buckets() {
        let path = temp_path("rollup-cursor");
        // A tight budget turns the early chunks into rollup cells.
        let (spill, _) = ObsSpill::open_with(&path, 512).unwrap();
        for chunk in 0..8u64 {
            let events: Vec<Event> = (0..8)
                .map(|i| event("t", chunk * ROLLUP_BUCKET_US + i, chunk * 8 + i))
                .collect();
            spill.spill_chunk(&events);
        }
        drop(spill);
        let (_spill, recovery) = ObsSpill::open_with(&path, 512).unwrap();
        assert!(!recovery.rollups.is_empty(), "budget never produced rollups");

        assert_eq!(
            recovery.rollups_after(ObsCursor::start()).len(),
            recovery.rollups.len()
        );
        // A cursor inside bucket N keeps bucket N (it straddles) and drops
        // every bucket that ended earlier.
        let cut = ObsCursor { time_us: 3 * ROLLUP_BUCKET_US + 1, seq: 0 };
        let kept = recovery.rollups_after(cut);
        assert!(kept.iter().all(|c| c.bucket_us + ROLLUP_BUCKET_US > cut.time_us));
        assert!(kept.iter().any(|c| c.bucket_us == 3 * ROLLUP_BUCKET_US));
        assert!(kept.len() < recovery.rollups.len(), "old buckets must drop");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_record_kinds_are_skipped_not_fatal() {
        let path = temp_path("foreign-kind");
        {
            let (mut log, _) = OpLog::open(&path).unwrap();
            log.append(REC_CHUNK, &encode_chunk(&[event("t", 10, 0)])).unwrap();
            log.append(0x7f, b"someone else's record").unwrap();
            log.append(REC_CHUNK, b"not a chunk body").unwrap();
        }
        let (_spill, recovery) = ObsSpill::open(&path).unwrap();
        assert_eq!(recovery.chunks.len(), 1);
        assert_eq!(recovery.corrupt_records, 2);
        let _ = std::fs::remove_file(&path);
    }
}
