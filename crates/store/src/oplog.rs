//! The generic append-only record log under the WAL (and under the router's
//! placement journal): a file of checksummed `(kind, body)` records in the
//! same dependency-free style as the snapshot and wire codecs.
//!
//! ```text
//! offset  size  field
//! 0       4     file magic  b"OFLG"
//! 4       2     format version, little-endian u16 (currently 1)
//! 6       2     reserved (zero)
//! 8       8     epoch, little-endian u64 (generation tag, see below)
//! 16      …     records, each:
//!                 kind      u8
//!                 length    u32 LE (body bytes)
//!                 body      length bytes
//!                 checksum  u32 LE, FNV-1a over kind + length + body
//! ```
//!
//! Appends are flushed per record, so every record the caller was told is
//! durable survives a process kill. Reads are **torn-tail tolerant**: a
//! record that fails its length or checksum (the classic half-written tail of
//! a killed writer) truncates the log at the last intact record instead of
//! failing the open — exactly the semantics a write-ahead log wants, because
//! a torn record's operation was never acknowledged. A damaged file *header*
//! is a hard [`StoreError::BadLogHeader`]: there is no prefix to salvage.
//!
//! The header's **epoch** is an opaque generation tag the layer above pairs
//! with a sibling file: the WAL store stamps its checkpoint and its log with
//! the same epoch and bumps both on every checkpoint, so a crash between
//! "new checkpoint renamed" and "log truncated" is detected at open time
//! (the log's epoch lags the checkpoint's) and the stale records — all
//! already folded into that checkpoint — are discarded instead of replayed
//! onto the newer base.

use crate::error::StoreError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// When [`OpLog::append`] pushes records past the OS page cache onto stable
/// storage (`File::sync_data`). Every policy still *flushes* per record —
/// a record the caller was told about always survives a process kill; the
/// policy decides what survives a whole-machine power cut, trading fsync
/// latency against the durability window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Flush to the OS per record, never `fsync` — the historical behaviour
    /// and the default. Fastest; a power cut can lose the page cache.
    #[default]
    Flush,
    /// `fsync` after every record: nothing acknowledged is ever lost, at one
    /// disk round trip per append.
    PerRecord,
    /// Group commit by count: `fsync` once every `n` records (the tail since
    /// the last sync rides along). `EveryN(1)` behaves like [`SyncPolicy::PerRecord`];
    /// `EveryN(0)` is treated as 1.
    EveryN(u64),
    /// Group commit by time: `fsync` on the first append at least this long
    /// after the previous sync. Bounds the power-cut loss window to roughly
    /// the interval under steady traffic.
    Interval(Duration),
}

/// Magic bytes identifying a store record log.
pub const LOG_MAGIC: [u8; 4] = *b"OFLG";

/// Current record-log format version.
pub const LOG_VERSION: u16 = 1;

const HEADER_LEN: usize = 16;
/// kind (1) + length (4) + checksum (4).
const RECORD_OVERHEAD: usize = 9;

/// FNV-1a 32-bit hash — small, dependency-free corruption detection. Not a
/// cryptographic integrity check.
pub(crate) fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// One raw log record: the kind byte plus an opaque body the layer above
/// interprets (WAL records, placement overrides).
pub type RawRecord = (u8, Vec<u8>);

/// Serializes one record (kind + length + body + checksum) into `out`.
fn encode_record(out: &mut Vec<u8>, kind: u8, body: &[u8]) {
    let start = out.len();
    out.push(kind);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    let checksum = fnv1a(&out[start..]);
    out.extend_from_slice(&checksum.to_le_bytes());
}

/// Parses records from `bytes` (which excludes the file header). Returns the
/// intact records and the length of the valid prefix; anything past it is a
/// torn or corrupt tail the caller should truncate.
fn parse_records(bytes: &[u8]) -> (Vec<RawRecord>, usize) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = &bytes[offset..];
        if rest.len() < RECORD_OVERHEAD {
            break;
        }
        let kind = rest[0];
        let len = u32::from_le_bytes(rest[1..5].try_into().expect("length checked")) as usize;
        let Some(total) = len.checked_add(RECORD_OVERHEAD) else { break };
        if rest.len() < total {
            break;
        }
        let stored = u32::from_le_bytes(
            rest[5 + len..total].try_into().expect("length checked"),
        );
        if stored != fnv1a(&rest[..5 + len]) {
            break;
        }
        records.push((kind, rest[5..5 + len].to_vec()));
        offset += total;
    }
    (records, offset)
}

fn header_bytes(epoch: u64) -> Vec<u8> {
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&LOG_MAGIC);
    header.extend_from_slice(&LOG_VERSION.to_le_bytes());
    header.extend_from_slice(&[0u8; 2]);
    header.extend_from_slice(&epoch.to_le_bytes());
    header
}

/// An open append handle on one record log file.
#[derive(Debug)]
pub struct OpLog {
    path: PathBuf,
    file: File,
    records: u64,
    bytes: u64,
    epoch: u64,
    sync: SyncPolicy,
    /// Records appended since the last `sync_data` (for [`SyncPolicy::EveryN`]).
    appends_since_sync: u64,
    /// When the last `sync_data` ran (for [`SyncPolicy::Interval`]).
    last_sync: Instant,
}

impl OpLog {
    /// Opens (or creates) the log at `path` and returns the intact records it
    /// already holds. A torn or corrupt tail is truncated away — the open
    /// repairs the file so subsequent appends extend the intact prefix.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] for filesystem failures and
    /// [`StoreError::BadLogHeader`] when the file exists but is not a store
    /// log (there is nothing to salvage behind a foreign header).
    pub fn open(path: &Path) -> Result<(OpLog, Vec<RawRecord>), StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.len() < HEADER_LEN {
            // Brand new, or a header torn mid-write (which can hold no
            // records): start fresh — but only if what is there is a prefix
            // of our own magic/version/reserved preamble (a torn epoch is
            // fine: no records can exist behind a torn header). A short
            // *foreign* file is rejected like a full-size one, not
            // destroyed.
            let preamble = header_bytes(0);
            let check = bytes.len().min(8);
            if bytes[..check] != preamble[..check] {
                return Err(StoreError::BadLogHeader {
                    path: path.display().to_string(),
                    detail: format!(
                        "{} bytes of non-log content (not a torn log header)",
                        bytes.len()
                    ),
                });
            }
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&header_bytes(0))?;
            file.flush()?;
            return Ok((
                OpLog {
                    path: path.to_path_buf(),
                    file,
                    records: 0,
                    bytes: HEADER_LEN as u64,
                    epoch: 0,
                    sync: SyncPolicy::default(),
                    appends_since_sync: 0,
                    last_sync: Instant::now(),
                },
                Vec::new(),
            ));
        }
        if bytes[0..4] != LOG_MAGIC {
            return Err(StoreError::BadLogHeader {
                path: path.display().to_string(),
                detail: format!("magic {:?} (expected {LOG_MAGIC:?})", &bytes[0..4]),
            });
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("length checked"));
        if version != LOG_VERSION {
            return Err(StoreError::BadLogHeader {
                path: path.display().to_string(),
                detail: format!("version {version} (decoder speaks {LOG_VERSION})"),
            });
        }

        let epoch = u64::from_le_bytes(bytes[8..16].try_into().expect("length checked"));
        let (records, valid) = parse_records(&bytes[HEADER_LEN..]);
        let end = (HEADER_LEN + valid) as u64;
        if end < bytes.len() as u64 {
            // Torn or corrupt tail: truncate to the intact prefix.
            file.set_len(end)?;
        }
        file.seek(SeekFrom::Start(end))?;
        Ok((
            OpLog {
                path: path.to_path_buf(),
                file,
                records: records.len() as u64,
                bytes: end,
                epoch,
                sync: SyncPolicy::default(),
                appends_since_sync: 0,
                last_sync: Instant::now(),
            },
            records,
        ))
    }

    /// Sets when appends are pushed to stable storage — see [`SyncPolicy`].
    /// Takes effect from the next [`OpLog::append`].
    pub fn set_sync_policy(&mut self, sync: SyncPolicy) {
        self.sync = sync;
    }

    /// The log's current [`SyncPolicy`].
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }

    /// Appends one record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the write fails; the log is then in an
    /// unknown tail state that the next open repairs by truncation.
    pub fn append(&mut self, kind: u8, body: &[u8]) -> Result<(), StoreError> {
        let mut buf = Vec::with_capacity(body.len() + RECORD_OVERHEAD);
        encode_record(&mut buf, kind, body);
        self.file.write_all(&buf)?;
        self.file.flush()?;
        self.records += 1;
        self.bytes += buf.len() as u64;
        self.appends_since_sync += 1;
        let due = match self.sync {
            SyncPolicy::Flush => false,
            SyncPolicy::PerRecord => true,
            SyncPolicy::EveryN(n) => self.appends_since_sync >= n.max(1),
            SyncPolicy::Interval(window) => self.last_sync.elapsed() >= window,
        };
        if due {
            self.file.sync_data()?;
            self.appends_since_sync = 0;
            self.last_sync = Instant::now();
        }
        Ok(())
    }

    /// Atomically replaces the log's contents with `records` (compaction,
    /// post-checkpoint truncation): the replacement is written to a sibling
    /// temporary file and renamed over the log.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when writing or renaming fails; the
    /// original log is untouched in that case.
    pub fn rewrite(&mut self, records: &[RawRecord]) -> Result<(), StoreError> {
        self.rewrite_with_epoch(records, self.epoch)
    }

    /// Like [`OpLog::rewrite`], but also stamps a new generation epoch into
    /// the header — how the WAL store starts a fresh log generation after a
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when writing or renaming fails; the
    /// original log is untouched in that case.
    pub fn rewrite_with_epoch(
        &mut self,
        records: &[RawRecord],
        epoch: u64,
    ) -> Result<(), StoreError> {
        let tmp = self.path.with_extension("tmp");
        let mut buf = header_bytes(epoch);
        for (kind, body) in records {
            encode_record(&mut buf, *kind, body);
        }
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&buf)?;
            file.flush()?;
            // Under a durable policy the replacement's contents must be on
            // stable storage before the rename can make them the log.
            if self.sync != SyncPolicy::Flush {
                file.sync_data()?;
            }
        }
        std::fs::rename(&tmp, &self.path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.records = records.len() as u64;
        self.bytes = buf.len() as u64;
        self.epoch = epoch;
        self.appends_since_sync = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// The generation epoch stamped in the log's header.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of records currently in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Size of the log file in bytes (header included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("ofscil-oplog-{}-{tag}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn append_reopen_roundtrip() {
        let path = temp_path("roundtrip");
        {
            let (mut log, existing) = OpLog::open(&path).unwrap();
            assert!(existing.is_empty());
            log.append(1, b"alpha").unwrap();
            log.append(2, b"").unwrap();
            log.append(7, &[0u8; 300]).unwrap();
            assert_eq!(log.records(), 3);
        }
        let (log, records) = OpLog::open(&path).unwrap();
        assert_eq!(log.records(), 3);
        assert_eq!(records[0], (1, b"alpha".to_vec()));
        assert_eq!(records[1], (2, Vec::new()));
        assert_eq!(records[2].1.len(), 300);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = temp_path("torn");
        {
            let (mut log, _) = OpLog::open(&path).unwrap();
            log.append(1, b"keep-me").unwrap();
            log.append(2, b"half-written-record").unwrap();
        }
        // Tear the second record: chop a few bytes off the end.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);

        let (mut log, records) = OpLog::open(&path).unwrap();
        assert_eq!(records, vec![(1, b"keep-me".to_vec())]);
        // The repaired log accepts fresh appends cleanly.
        log.append(3, b"after-repair").unwrap();
        drop(log);
        let (_, records) = OpLog::open(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1], (3, b"after-repair".to_vec()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_record_stops_the_replay_there() {
        let path = temp_path("corrupt");
        {
            let (mut log, _) = OpLog::open(&path).unwrap();
            log.append(1, b"first").unwrap();
            log.append(2, b"second").unwrap();
        }
        // Flip one byte inside the first record's body: both records are
        // gone (the log cannot be trusted past the damage).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN + 6] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (log, records) = OpLog::open(&path).unwrap();
        assert!(records.is_empty());
        assert_eq!(log.records(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rewrite_replaces_contents_atomically() {
        let path = temp_path("rewrite");
        let (mut log, _) = OpLog::open(&path).unwrap();
        for i in 0..10 {
            log.append(1, &[i]).unwrap();
        }
        log.rewrite(&[(9, b"compacted".to_vec())]).unwrap();
        assert_eq!(log.records(), 1);
        log.append(1, b"tail").unwrap();
        drop(log);
        let (_, records) = OpLog::open(&path).unwrap();
        assert_eq!(records, vec![(9, b"compacted".to_vec()), (1, b"tail".to_vec())]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn every_sync_policy_appends_and_reopens_cleanly() {
        // sync_data is invisible to a same-OS reopen, so what this pins is
        // that every policy keeps the log readable and the counters exact —
        // including EveryN(0), which must behave as EveryN(1), and a
        // zero-length interval, which syncs on every append.
        for (tag, policy) in [
            ("flush", SyncPolicy::Flush),
            ("per-record", SyncPolicy::PerRecord),
            ("every-0", SyncPolicy::EveryN(0)),
            ("every-3", SyncPolicy::EveryN(3)),
            ("interval", SyncPolicy::Interval(Duration::from_millis(0))),
        ] {
            let path = temp_path(&format!("sync-{tag}"));
            {
                let (mut log, _) = OpLog::open(&path).unwrap();
                log.set_sync_policy(policy);
                assert_eq!(log.sync_policy(), policy);
                for i in 0..7u8 {
                    log.append(1, &[i]).unwrap();
                }
                log.rewrite(&[(9, b"compacted".to_vec())]).unwrap();
                log.append(2, b"tail").unwrap();
            }
            let (log, records) = OpLog::open(&path).unwrap();
            assert_eq!(log.records(), 2, "policy {policy:?}");
            assert_eq!(
                records,
                vec![(9, b"compacted".to_vec()), (2, b"tail".to_vec())],
                "policy {policy:?}"
            );
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn foreign_header_is_a_hard_error() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"NOTALOGFILE!").unwrap();
        assert!(matches!(
            OpLog::open(&path).unwrap_err(),
            StoreError::BadLogHeader { .. }
        ));
        // A short foreign file is rejected too, never truncated away...
        std::fs::write(&path, b"hi").unwrap();
        assert!(matches!(
            OpLog::open(&path).unwrap_err(),
            StoreError::BadLogHeader { .. }
        ));
        assert_eq!(std::fs::read(&path).unwrap(), b"hi");
        // ...while a genuinely torn header (a prefix of our own) heals.
        std::fs::write(&path, &LOG_MAGIC[..3]).unwrap();
        let (log, records) = OpLog::open(&path).unwrap();
        assert!(records.is_empty());
        assert_eq!(log.records(), 0);
        let _ = std::fs::remove_file(&path);
    }
}
