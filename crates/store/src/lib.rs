//! `ofscil_store` — a durable WAL + checkpoint store for O-FSCIL serving.
//!
//! The paper's whole value proposition is that learned classes are cheap
//! (12 mJ) but precious: prototypes written online from a handful of shots
//! cannot be recomputed if a process dies. Until this crate, every
//! deployment's explicit memory lived only in RAM (plus best-effort
//! snapshots over the wire). This is the log-structured persistence layer
//! underneath the serving stack:
//!
//! * [`OpLog`] — the generic append-only record log (per-record magic-style
//!   framing with an FNV-1a checksum, torn-tail tolerant reads) that both
//!   the WAL and the router's placement journal build on,
//! * [`WalRecord`] — sequence-numbered value-logged operations (`Learn`,
//!   `Import`, `TopUp`), each carrying the post-operation replication
//!   sequence number and energy-meter state,
//! * [`Checkpoint`] / [`replay`] — periodic full-snapshot checkpoints plus
//!   deterministic log replay reconstructing explicit memory, sequence
//!   number and energy budget **bit-exactly**,
//! * [`compact_records`] — delta compaction: runs of records overwriting the
//!   same class slots collapse to the newest prototype per class, bounding
//!   replay cost by live classes instead of total writes,
//! * [`ObsSpill`] — durable spill for `ofscil_obs` timelines: sealed chunk
//!   records with torn-tail tolerance, budget-driven compaction of old
//!   chunks into per-minute rollup records under a bumped epoch, and
//!   [`SpillRecovery::rehydrate_into`] so a restarted shard's timeline
//!   queries answer as if it never died,
//! * [`Store`] — the per-deployment file store: journaling (it implements
//!   `ofscil_serve`'s [`CommitJournal`](ofscil_serve::CommitJournal) hook),
//!   crash [`recovery`](Store::recover), [`bootstrap`](Store::bootstrap) for
//!   restart *and* follower promotion, checkpoint-served
//!   [replication anchors](Store::replication_anchor), and
//!   [`maintenance`](Store::maintenance) sweeps a background thread polls.
//!
//! Crash-consistency contract: a record is flushed before its request is
//! acknowledged, checkpoints are written to a temporary sibling and renamed,
//! and recovery truncates a torn or corrupt WAL **tail** instead of failing
//! (the torn record's operation was never acknowledged as durable). The
//! random-damage property suite in `tests/store_recovery.rs` holds that
//! line.
//!
//! # Example
//!
//! ```no_run
//! use ofscil_core::OFscilModel;
//! use ofscil_nn::models::BackboneKind;
//! use ofscil_serve::{DeploymentSpec, LearnerRegistry};
//! use ofscil_store::Store;
//! use ofscil_tensor::SeedRng;
//!
//! let registry = LearnerRegistry::new();
//! registry
//!     .register(
//!         DeploymentSpec::new("tenant-a", (32, 32)),
//!         OFscilModel::new(BackboneKind::Micro, 32, &mut SeedRng::new(7)),
//!     )
//!     .unwrap();
//! let store = Store::open("/var/lib/ofscil").unwrap();
//! // Restores anything persisted, checkpoints anything new.
//! let recovered = store.bootstrap(&registry).unwrap();
//! println!("recovered {} deployments", recovered.len());
//! // Hand `&store` to `ServeRuntime::run_journaled` (or
//! // `WireServer::run_with_store`) and every commit is durable.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod obs_spill;
mod oplog;
mod store;
mod wal;

pub use error::StoreError;
pub use obs_spill::{
    ObsSpill, SpillRecovery, SpillStats, DEFAULT_SPILL_BUDGET, REC_CHUNK, REC_ROLLUP,
    SPILL_FILE,
};
pub use oplog::{OpLog, RawRecord, SyncPolicy, LOG_MAGIC, LOG_VERSION};
pub use store::{RecoveryReport, Store, StoreConfig};
pub use wal::{
    compact_records, replay, Checkpoint, DeploymentState, WalRecord, CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
};

/// Result alias used across the store crate.
pub type Result<T> = std::result::Result<T, StoreError>;
