//! Typed WAL records, checkpoint files, log replay and delta compaction.
//!
//! A deployment's durable state is one **checkpoint** (a full explicit-memory
//! snapshot plus the replication sequence number and energy-meter state it
//! was taken at) and a **write-ahead log** of the operations committed since:
//!
//! * [`WalRecord::Learn`] — one committed `LearnOnline`: the post-commit
//!   prototypes of the classes the batch touched (the same value-logged
//!   deltas the replication stream carries),
//! * [`WalRecord::Import`] — a full explicit-memory install (live migration,
//!   restore): the snapshot-codec bytes that were installed,
//! * [`WalRecord::TopUp`] — a budget top-up (the sequence number is
//!   unchanged; only the meter state moves).
//!
//! Every record carries the deployment's replication sequence number and
//! energy-meter state *after* the operation, so [`replay`] reconstructs all
//! three recovery targets — explicit memory, sequence number, energy budget —
//! bit-exactly from checkpoint + log.
//!
//! [`compact_records`] is the delta compaction: runs of `Learn` records
//! overwriting the same class slots collapse to one record holding only the
//! newest prototype per class, so replay cost is bounded by **live classes**,
//! not total writes. Compaction is replay-equivalent by construction (the
//! property the `compaction_equivalence` test drives with random op
//! sequences).

use crate::error::StoreError;
use crate::oplog::{fnv1a, RawRecord};
use ofscil_serve::{decode_explicit_memory, encode_explicit_memory};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// Record kind bytes inside the WAL's [`OpLog`](crate::OpLog).
const KIND_LEARN: u8 = 0x01;
const KIND_IMPORT: u8 = 0x02;
const KIND_TOP_UP: u8 = 0x03;

/// Magic bytes identifying a checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"OFCK";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u16 = 1;

/// One durable operation on a deployment's explicit memory or budget.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// One committed `LearnOnline`.
    Learn {
        /// Replication sequence number of the commit.
        seq: u64,
        /// Total classes stored after the commit.
        total_classes: u64,
        /// `(class, post-commit prototype)` pairs, ascending by class.
        updates: Vec<(u64, Vec<f32>)>,
        /// Energy admitted against the budget after the commit settled, in
        /// millijoules.
        spent_mj: f64,
        /// Energy budget after the commit; `None` when unlimited.
        budget_mj: Option<f64>,
    },
    /// A full explicit-memory install (migration import, restore).
    Import {
        /// Replication sequence number after the install.
        seq: u64,
        /// The installed `ofscil_serve::snapshot` codec bytes.
        snapshot: Vec<u8>,
        /// Meter spend after the install, in millijoules.
        spent_mj: f64,
        /// Budget after the install; `None` when unlimited.
        budget_mj: Option<f64>,
    },
    /// A budget top-up; the sequence number does not advance.
    TopUp {
        /// Replication sequence number at the time of the top-up.
        seq: u64,
        /// Meter spend after the top-up, in millijoules.
        spent_mj: f64,
        /// Budget after the top-up; `None` when unlimited.
        budget_mj: Option<f64>,
    },
}

impl WalRecord {
    /// The replication sequence number the record carries.
    pub fn seq(&self) -> u64 {
        match self {
            WalRecord::Learn { seq, .. }
            | WalRecord::Import { seq, .. }
            | WalRecord::TopUp { seq, .. } => *seq,
        }
    }
}

// ---------------------------------------------------------------------------
// Body codec (little-endian, floats as IEEE-754 bits — the house style)
// ---------------------------------------------------------------------------

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_budget(out: &mut Vec<u8>, budget: Option<f64>) {
    match budget {
        Some(v) => {
            out.push(1);
            put_f64(out, v);
        }
        None => out.push(0),
    }
}

/// Bounds-checked little cursor; decode failures yield `None` and the caller
/// treats the record as corrupt (same truncate-the-tail handling as a failed
/// checksum).
struct Cursor<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, offset: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.offset.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.offset..end];
        self.offset = end;
        Some(slice)
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f32(&mut self) -> Option<f32> {
        Some(f32::from_bits(self.u32()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn budget(&mut self) -> Option<Option<f64>> {
        match self.take(1)?[0] {
            0 => Some(None),
            1 => Some(Some(self.f64()?)),
            _ => None,
        }
    }

    fn finished(&self) -> bool {
        self.offset == self.bytes.len()
    }
}

/// Encodes a record into its raw `(kind, body)` form for the op log.
pub(crate) fn encode_record(record: &WalRecord) -> RawRecord {
    let mut body = Vec::new();
    let kind = match record {
        WalRecord::Learn { seq, total_classes, updates, spent_mj, budget_mj } => {
            body.extend_from_slice(&seq.to_le_bytes());
            body.extend_from_slice(&total_classes.to_le_bytes());
            put_f64(&mut body, *spent_mj);
            put_budget(&mut body, *budget_mj);
            body.extend_from_slice(&(updates.len() as u32).to_le_bytes());
            for (class, prototype) in updates {
                body.extend_from_slice(&class.to_le_bytes());
                body.extend_from_slice(&(prototype.len() as u32).to_le_bytes());
                for &v in prototype {
                    body.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            KIND_LEARN
        }
        WalRecord::Import { seq, snapshot, spent_mj, budget_mj } => {
            body.extend_from_slice(&seq.to_le_bytes());
            put_f64(&mut body, *spent_mj);
            put_budget(&mut body, *budget_mj);
            body.extend_from_slice(&(snapshot.len() as u32).to_le_bytes());
            body.extend_from_slice(snapshot);
            KIND_IMPORT
        }
        WalRecord::TopUp { seq, spent_mj, budget_mj } => {
            body.extend_from_slice(&seq.to_le_bytes());
            put_f64(&mut body, *spent_mj);
            put_budget(&mut body, *budget_mj);
            KIND_TOP_UP
        }
    };
    (kind, body)
}

/// Decodes a raw `(kind, body)` record. `None` marks a record the checksum
/// let through but whose body does not parse — treated as corruption.
pub(crate) fn decode_record(kind: u8, body: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor::new(body);
    let record = match kind {
        KIND_LEARN => {
            let seq = c.u64()?;
            let total_classes = c.u64()?;
            let spent_mj = c.f64()?;
            let budget_mj = c.budget()?;
            let count = c.u32()? as usize;
            let mut updates = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let class = c.u64()?;
                let dim = c.u32()? as usize;
                let mut prototype = Vec::with_capacity(dim.min(65_536));
                for _ in 0..dim {
                    prototype.push(c.f32()?);
                }
                updates.push((class, prototype));
            }
            WalRecord::Learn { seq, total_classes, updates, spent_mj, budget_mj }
        }
        KIND_IMPORT => {
            let seq = c.u64()?;
            let spent_mj = c.f64()?;
            let budget_mj = c.budget()?;
            let len = c.u32()? as usize;
            let snapshot = c.take(len)?.to_vec();
            WalRecord::Import { seq, snapshot, spent_mj, budget_mj }
        }
        KIND_TOP_UP => {
            let seq = c.u64()?;
            let spent_mj = c.f64()?;
            let budget_mj = c.budget()?;
            WalRecord::TopUp { seq, spent_mj, budget_mj }
        }
        _ => return None,
    };
    c.finished().then_some(record)
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// A full-snapshot checkpoint: everything recovery needs without reading a
/// single WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Generation tag pairing the checkpoint with its WAL: both carry the
    /// same epoch, and checkpointing bumps it. A WAL whose epoch lags its
    /// checkpoint's is a stale generation (a crash landed between the
    /// checkpoint rename and the log truncation) and its records — all
    /// already folded into the checkpoint — are discarded at open.
    pub epoch: u64,
    /// Replication sequence number the snapshot was taken at; a snapshot at
    /// `seq` already contains every commit numbered `<= seq`.
    pub seq: u64,
    /// Energy admitted against the budget at checkpoint time, in millijoules.
    pub spent_mj: f64,
    /// Energy budget at checkpoint time; `None` when unlimited.
    pub budget_mj: Option<f64>,
    /// `ofscil_serve::snapshot` codec bytes of the explicit memory.
    pub snapshot: Vec<u8>,
}

impl Checkpoint {
    /// Serializes the checkpoint to its file format (magic, version, fields,
    /// trailing FNV-1a checksum).
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(32 + self.snapshot.len());
        bytes.extend_from_slice(&CHECKPOINT_MAGIC);
        bytes.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 2]);
        bytes.extend_from_slice(&self.epoch.to_le_bytes());
        bytes.extend_from_slice(&self.seq.to_le_bytes());
        put_f64(&mut bytes, self.spent_mj);
        put_budget(&mut bytes, self.budget_mj);
        bytes.extend_from_slice(&(self.snapshot.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&self.snapshot);
        let checksum = fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes
    }

    /// Parses a checkpoint file's bytes.
    ///
    /// Unlike the WAL there is no salvageable prefix: any damage fails the
    /// decode, and the caller reports [`StoreError::CorruptCheckpoint`].
    pub(crate) fn decode(bytes: &[u8]) -> Result<Checkpoint, String> {
        if bytes.len() < 12 {
            return Err(format!("{} bytes is shorter than the fixed header", bytes.len()));
        }
        if bytes[0..4] != CHECKPOINT_MAGIC {
            return Err(format!("bad magic {:?}", &bytes[0..4]));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("length checked"));
        if version != CHECKPOINT_VERSION {
            return Err(format!("unsupported version {version}"));
        }
        let payload_end = bytes.len() - 4;
        let stored = u32::from_le_bytes(bytes[payload_end..].try_into().expect("length checked"));
        let computed = fnv1a(&bytes[..payload_end]);
        if stored != computed {
            return Err(format!("checksum {stored:#010x} != computed {computed:#010x}"));
        }
        let mut c = Cursor::new(&bytes[8..payload_end]);
        let mut parse = || -> Option<Checkpoint> {
            let epoch = c.u64()?;
            let seq = c.u64()?;
            let spent_mj = c.f64()?;
            let budget_mj = c.budget()?;
            let len = c.u32()? as usize;
            let snapshot = c.take(len)?.to_vec();
            c.finished().then_some(Checkpoint { epoch, seq, spent_mj, budget_mj, snapshot })
        };
        parse().ok_or_else(|| "truncated or oversized body".to_string())
    }

    /// Writes the checkpoint to `path` atomically (temporary sibling +
    /// rename), so a crash mid-write leaves the previous checkpoint intact.
    pub(crate) fn write_to(&self, path: &Path) -> Result<(), StoreError> {
        let tmp = path.with_extension("ckpt-tmp");
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&self.encode())?;
            file.flush()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// A deployment's fully-replayed durable state — the three things recovery
/// restores bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentState {
    /// Replication sequence number.
    pub seq: u64,
    /// `ofscil_serve::snapshot` codec bytes of the explicit memory.
    pub snapshot: Vec<u8>,
    /// Energy admitted against the budget, in millijoules.
    pub spent_mj: f64,
    /// Energy budget; `None` when unlimited.
    pub budget_mj: Option<f64>,
}

/// Replays a WAL on top of its checkpoint and returns the resulting state.
///
/// Records whose sequence number is at or below the running sequence are
/// already contained (a checkpoint taken at `seq` holds every commit
/// `<= seq`) and are skipped; `TopUp` records only move the meter. The
/// replayed snapshot is re-encoded with the deterministic snapshot codec, so
/// it is byte-identical to what the live deployment would answer to a
/// `Snapshot` request at the same sequence number.
///
/// # Errors
///
/// Returns [`StoreError::Codec`] when the checkpoint snapshot (or an
/// `Import` record's snapshot) does not decode — WAL-tail corruption never
/// reaches here; it is truncated at open time.
pub fn replay(checkpoint: &Checkpoint, records: &[WalRecord]) -> Result<DeploymentState, StoreError> {
    if records.is_empty() {
        return Ok(DeploymentState {
            seq: checkpoint.seq,
            snapshot: checkpoint.snapshot.clone(),
            spent_mj: checkpoint.spent_mj,
            budget_mj: checkpoint.budget_mj,
        });
    }
    let mut em = decode_explicit_memory(&checkpoint.snapshot)?;
    let mut seq = checkpoint.seq;
    let mut spent_mj = checkpoint.spent_mj;
    let mut budget_mj = checkpoint.budget_mj;
    for record in records {
        match record {
            WalRecord::Learn { seq: s, updates, spent_mj: sp, budget_mj: b, .. } => {
                if *s <= seq {
                    continue;
                }
                for (class, prototype) in updates {
                    let class = usize::try_from(*class).map_err(|_| {
                        StoreError::Codec(ofscil_serve::ServeError::InvalidRequest(format!(
                            "journaled class id {class} overflows usize"
                        )))
                    })?;
                    em.restore_prototype(class, prototype)
                        .map_err(|e| StoreError::Codec(e.into()))?;
                }
                seq = *s;
                spent_mj = *sp;
                budget_mj = *b;
            }
            WalRecord::Import { seq: s, snapshot, spent_mj: sp, budget_mj: b } => {
                if *s <= seq {
                    continue;
                }
                em = decode_explicit_memory(snapshot)?;
                seq = *s;
                spent_mj = *sp;
                budget_mj = *b;
            }
            WalRecord::TopUp { spent_mj: sp, budget_mj: b, .. } => {
                spent_mj = *sp;
                budget_mj = *b;
            }
        }
    }
    Ok(DeploymentState { seq, snapshot: encode_explicit_memory(&em), spent_mj, budget_mj })
}

// ---------------------------------------------------------------------------
// Delta compaction
// ---------------------------------------------------------------------------

/// Collapses runs of `Learn` records that overwrite the same class slots:
/// within a run, only the **newest** prototype per class matters for replay,
/// so the run becomes a single record carrying the latest prototype of every
/// touched class, the run's final sequence number, class count and meter
/// state. `Import` records are full-state barriers that flush the run;
/// `TopUp` records fold their meter state into the pending run (or survive
/// verbatim when no run is pending, so the final meter state is always
/// preserved).
///
/// The result replays to **exactly** the same [`DeploymentState`] as the
/// input — the `compaction_equivalence` property test drives random op
/// sequences through both paths — while its length is bounded by the number
/// of `Import` barriers plus one record per segment, and each collapsed
/// record by the number of live classes.
pub fn compact_records(records: &[WalRecord]) -> Vec<WalRecord> {
    struct Pending {
        updates: BTreeMap<u64, Vec<f32>>,
        seq: u64,
        total_classes: u64,
        spent_mj: f64,
        budget_mj: Option<f64>,
    }
    let flush = |pending: Option<Pending>, out: &mut Vec<WalRecord>| {
        if let Some(p) = pending {
            out.push(WalRecord::Learn {
                seq: p.seq,
                total_classes: p.total_classes,
                updates: p.updates.into_iter().collect(),
                spent_mj: p.spent_mj,
                budget_mj: p.budget_mj,
            });
        }
    };

    let mut out = Vec::new();
    let mut pending: Option<Pending> = None;
    for record in records {
        match record {
            WalRecord::Learn { seq, total_classes, updates, spent_mj, budget_mj } => {
                let p = pending.get_or_insert_with(|| Pending {
                    updates: BTreeMap::new(),
                    seq: 0,
                    total_classes: 0,
                    spent_mj: 0.0,
                    budget_mj: None,
                });
                for (class, prototype) in updates {
                    p.updates.insert(*class, prototype.clone());
                }
                p.seq = *seq;
                p.total_classes = *total_classes;
                p.spent_mj = *spent_mj;
                p.budget_mj = *budget_mj;
            }
            WalRecord::Import { .. } => {
                flush(pending.take(), &mut out);
                out.push(record.clone());
            }
            WalRecord::TopUp { spent_mj, budget_mj, .. } => match pending.as_mut() {
                // The pending collapsed record is emitted *after* this
                // top-up's position, so folding the meter state into it
                // preserves last-writer-wins replay semantics.
                Some(p) => {
                    p.spent_mj = *spent_mj;
                    p.budget_mj = *budget_mj;
                }
                None => out.push(record.clone()),
            },
        }
    }
    flush(pending, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_core::ExplicitMemory;

    fn proto(dim: usize, fill: f32) -> Vec<f32> {
        (0..dim).map(|i| fill + i as f32 * 0.125).collect()
    }

    fn empty_checkpoint(dim: usize) -> Checkpoint {
        Checkpoint {
            epoch: 0,
            seq: 0,
            spent_mj: 0.0,
            budget_mj: None,
            snapshot: encode_explicit_memory(&ExplicitMemory::new(dim)),
        }
    }

    #[test]
    fn record_codec_roundtrips_every_kind() {
        let records = [
            WalRecord::Learn {
                seq: 7,
                total_classes: 3,
                updates: vec![(0, proto(4, 0.5)), (9, proto(4, -1.0))],
                spent_mj: 12.5,
                budget_mj: Some(100.0),
            },
            WalRecord::Import {
                seq: 8,
                snapshot: vec![1, 2, 3, 4, 5],
                spent_mj: f64::MIN_POSITIVE,
                budget_mj: None,
            },
            WalRecord::TopUp { seq: 8, spent_mj: 0.0, budget_mj: Some(55.25) },
        ];
        for record in &records {
            let (kind, body) = encode_record(record);
            let back = decode_record(kind, &body).expect("decodes");
            assert_eq!(&back, record);
        }
        // Unknown kinds and trailing bytes are rejected, not panics.
        assert!(decode_record(0x7f, &[]).is_none());
        let (kind, mut body) = encode_record(&records[2]);
        body.push(0xab);
        assert!(decode_record(kind, &body).is_none());
    }

    #[test]
    fn checkpoint_codec_roundtrips_and_detects_damage() {
        let ckpt = Checkpoint {
            epoch: 3,
            seq: 42,
            spent_mj: 3.125,
            budget_mj: Some(64.0),
            snapshot: encode_explicit_memory(&ExplicitMemory::new(8)),
        };
        let bytes = ckpt.encode();
        assert_eq!(Checkpoint::decode(&bytes).unwrap(), ckpt);
        let mut flipped = bytes.clone();
        flipped[10] ^= 0x01;
        assert!(Checkpoint::decode(&flipped).is_err());
        assert!(Checkpoint::decode(&bytes[..bytes.len() - 2]).is_err());
        assert!(Checkpoint::decode(b"OFEMnope").is_err());
    }

    #[test]
    fn replay_applies_learns_imports_and_top_ups_in_order() {
        let dim = 4;
        let ckpt = empty_checkpoint(dim);
        let mut foreign = ExplicitMemory::new(dim);
        foreign.set_prototype(2, &proto(dim, 9.0)).unwrap();
        let records = vec![
            WalRecord::Learn {
                seq: 1,
                total_classes: 1,
                updates: vec![(0, proto(dim, 1.0))],
                spent_mj: 1.0,
                budget_mj: Some(10.0),
            },
            WalRecord::TopUp { seq: 1, spent_mj: 1.0, budget_mj: Some(20.0) },
            WalRecord::Import {
                seq: 2,
                snapshot: encode_explicit_memory(&foreign),
                spent_mj: 1.5,
                budget_mj: Some(20.0),
            },
            WalRecord::Learn {
                seq: 3,
                total_classes: 2,
                updates: vec![(5, proto(dim, -2.0))],
                spent_mj: 2.0,
                budget_mj: Some(20.0),
            },
        ];
        let state = replay(&ckpt, &records).unwrap();
        assert_eq!(state.seq, 3);
        assert_eq!(state.spent_mj, 2.0);
        assert_eq!(state.budget_mj, Some(20.0));
        let em = decode_explicit_memory(&state.snapshot).unwrap();
        // The import wiped class 0; classes 2 (imported) and 5 (post-import
        // learn) remain.
        assert_eq!(em.classes(), vec![2, 5]);

        // Records at or below the running seq are contained and skipped.
        let stale = vec![WalRecord::Learn {
            seq: 3,
            total_classes: 9,
            updates: vec![(7, proto(dim, 4.0))],
            spent_mj: 99.0,
            budget_mj: None,
        }];
        let ckpt_at_3 = Checkpoint {
            epoch: 0,
            seq: 3,
            spent_mj: 2.0,
            budget_mj: Some(20.0),
            snapshot: state.snapshot.clone(),
        };
        let replayed = replay(&ckpt_at_3, &stale).unwrap();
        assert_eq!(replayed.snapshot, state.snapshot);
        assert_eq!(replayed.spent_mj, 2.0);
    }

    #[test]
    fn compaction_collapses_overwrites_and_keeps_the_final_meter() {
        let dim = 4;
        // 50 learns hammering the same two classes, with a top-up at the end.
        let mut records = Vec::new();
        for i in 0..50u64 {
            records.push(WalRecord::Learn {
                seq: i + 1,
                total_classes: 2,
                updates: vec![(i % 2, proto(dim, i as f32))],
                spent_mj: i as f64,
                budget_mj: Some(1000.0),
            });
        }
        records.push(WalRecord::TopUp { seq: 50, spent_mj: 50.0, budget_mj: Some(2000.0) });
        let compacted = compact_records(&records);
        assert_eq!(compacted.len(), 1, "one collapsed record, not 51");
        match &compacted[0] {
            WalRecord::Learn { seq, updates, spent_mj, budget_mj, .. } => {
                assert_eq!(*seq, 50);
                assert_eq!(updates.len(), 2);
                assert_eq!(*spent_mj, 50.0);
                assert_eq!(*budget_mj, Some(2000.0));
            }
            other => panic!("unexpected {other:?}"),
        }
        let ckpt = empty_checkpoint(dim);
        assert_eq!(replay(&ckpt, &records).unwrap(), replay(&ckpt, &compacted).unwrap());
    }

    #[test]
    fn compaction_respects_import_barriers() {
        let dim = 4;
        let mut foreign = ExplicitMemory::new(dim);
        foreign.set_prototype(1, &proto(dim, 7.0)).unwrap();
        let records = vec![
            WalRecord::Learn {
                seq: 1,
                total_classes: 1,
                updates: vec![(0, proto(dim, 1.0))],
                spent_mj: 1.0,
                budget_mj: None,
            },
            WalRecord::Import {
                seq: 2,
                snapshot: encode_explicit_memory(&foreign),
                spent_mj: 1.0,
                budget_mj: None,
            },
            WalRecord::Learn {
                seq: 3,
                total_classes: 2,
                updates: vec![(0, proto(dim, 5.0))],
                spent_mj: 2.0,
                budget_mj: None,
            },
        ];
        let compacted = compact_records(&records);
        // learn | import | learn — nothing collapses across the barrier.
        assert_eq!(compacted.len(), 3);
        let ckpt = empty_checkpoint(dim);
        assert_eq!(replay(&ckpt, &records).unwrap(), replay(&ckpt, &compacted).unwrap());
    }

    #[test]
    fn lone_top_up_survives_compaction_verbatim() {
        let records = vec![WalRecord::TopUp { seq: 0, spent_mj: 0.0, budget_mj: Some(5.0) }];
        assert_eq!(compact_records(&records), records);
    }
}
