//! The durable store: per-deployment WAL + checkpoint files under one root
//! directory, with journaling, recovery, delta compaction and checkpointing.

use crate::error::StoreError;
use crate::oplog::{OpLog, SyncPolicy};
use crate::wal::{compact_records, decode_record, encode_record, replay, Checkpoint, DeploymentState, WalRecord};
use ofscil_serve::{CommitJournal, DurabilityStats, LearnCommit, LearnerRegistry};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Tuning knobs of a [`Store`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// After this many journaled records, the deployment's log is rolled into
    /// a fresh full-snapshot checkpoint and the WAL truncated (inline on the
    /// journaling path, amortized over the interval).
    pub checkpoint_interval: u64,
    /// Logs holding at least this many records are delta-compacted by
    /// [`Store::maintenance`] — the hook a background maintenance thread
    /// polls (the wire server runs one; see `WireServer::run_with_store`).
    pub compact_min_records: u64,
    /// When WAL appends are pushed to stable storage — see [`SyncPolicy`].
    /// Applied to every deployment's log as it is opened or attached.
    pub sync: SyncPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            checkpoint_interval: 64,
            compact_min_records: 16,
            sync: SyncPolicy::default(),
        }
    }
}

impl StoreConfig {
    /// Sets the checkpoint interval (builder style).
    #[must_use]
    pub fn with_checkpoint_interval(mut self, records: u64) -> Self {
        self.checkpoint_interval = records.max(1);
        self
    }

    /// Sets the compaction threshold (builder style).
    #[must_use]
    pub fn with_compact_min_records(mut self, records: u64) -> Self {
        self.compact_min_records = records.max(1);
        self
    }

    /// Sets the WAL sync policy (builder style).
    #[must_use]
    pub fn with_sync_policy(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }
}

/// What [`Store::recover`] restored for one deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The recovered deployment.
    pub deployment: String,
    /// Replication sequence number the deployment was restored to.
    pub seq: u64,
    /// Classes in the restored explicit memory.
    pub classes: usize,
    /// WAL records replayed on top of the checkpoint.
    pub replayed_records: u64,
}

/// One deployment's open log state.
struct DeploymentLog {
    ckpt_path: PathBuf,
    checkpoint: Checkpoint,
    wal: OpLog,
    /// In-memory mirror of the WAL since the last checkpoint — what
    /// checkpointing, compaction and replication anchors replay without
    /// re-reading the file. Bounded by the checkpoint interval.
    records: Vec<WalRecord>,
    /// Records journaled since the last checkpoint. Independent of
    /// `records.len()`: compaction shrinks the log without resetting the
    /// checkpoint cadence, so the two knobs stay orthogonal.
    since_checkpoint: u64,
    /// Records appended since the last compaction attempt — what keeps a
    /// maintenance sweep from re-compacting an unchanged (or incompressible)
    /// log every tick.
    dirty: bool,
    /// Set when a WAL append failed: the log is missing an
    /// acknowledged-in-memory commit, so further appends are refused (deltas
    /// on a missing base would replay to a plausible-but-wrong state) and
    /// replication anchors fall back to live snapshots. Cleared only by a
    /// restart, whose recovery restores the durable prefix.
    gapped: bool,
    compactions: u64,
}

/// A log-structured persistence layer for a registry of deployments.
///
/// Layout: one directory, two files per deployment (names encoded so any
/// tenant name is a safe filename):
///
/// * `<name>.ckpt` — the latest full-snapshot checkpoint (explicit memory,
///   replication sequence number, energy-meter state), written atomically
///   via a temporary sibling + rename,
/// * `<name>.wal` — the write-ahead log of operations since that checkpoint
///   ([`WalRecord`]), one checksummed record per committed `LearnOnline`,
///   import or budget top-up.
///
/// Records are flushed per append, so every acknowledged commit survives a
/// process kill; a record torn by the kill itself is truncated away on the
/// next open (it was never acknowledged). Replay cost is bounded two ways:
/// checkpoints truncate the log every
/// [`checkpoint_interval`](StoreConfig::checkpoint_interval) records, and
/// [delta compaction](crate::compact_records) collapses runs of records that
/// overwrite the same class slots, so a hot deployment relearning the same
/// classes replays O(live classes), not O(total writes).
pub struct Store {
    root: PathBuf,
    config: StoreConfig,
    logs: Mutex<HashMap<String, Arc<Mutex<DeploymentLog>>>>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("root", &self.root)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// Encodes a deployment name into a filesystem-safe file stem: ASCII
/// alphanumerics, `-` and `_` pass through, everything else becomes `%XX`.
fn encode_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for &b in name.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' => out.push(b as char),
            other => out.push_str(&format!("%{other:02x}")),
        }
    }
    out
}

/// Inverse of [`encode_name`]; `None` for stems that are not valid encodings.
fn decode_name(stem: &str) -> Option<String> {
    let bytes = stem.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

impl Store {
    /// Opens (or creates) a store rooted at `dir` with default tuning,
    /// loading every persisted deployment's checkpoint and WAL. Torn or
    /// corrupt WAL tails are truncated to the intact prefix — never fatal.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] for filesystem failures and
    /// [`StoreError::CorruptCheckpoint`] when a checkpoint file is damaged
    /// (the WAL's torn-tail repair does not apply: without its full-snapshot
    /// base the log cannot be replayed).
    pub fn open(dir: impl AsRef<Path>) -> Result<Store, StoreError> {
        Store::open_with(dir, StoreConfig::default())
    }

    /// Opens (or creates) a store with explicit tuning knobs.
    ///
    /// # Errors
    ///
    /// See [`Store::open`].
    pub fn open_with(dir: impl AsRef<Path>, config: StoreConfig) -> Result<Store, StoreError> {
        let root = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        let mut logs = HashMap::new();
        for entry in std::fs::read_dir(&root)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("ckpt") {
                continue;
            }
            let Some(name) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(decode_name)
            else {
                continue;
            };
            let bytes = std::fs::read(&path)?;
            let checkpoint = Checkpoint::decode(&bytes).map_err(|detail| {
                StoreError::CorruptCheckpoint { deployment: name.clone(), detail }
            })?;
            let wal_path = path.with_extension("wal");
            let (mut wal, raw) = OpLog::open(&wal_path)?;
            wal.set_sync_policy(config.sync);
            let mut records = Vec::with_capacity(raw.len());
            if wal.epoch() != checkpoint.epoch {
                // A crash landed between the checkpoint rename and the log
                // truncation: the WAL is a stale generation whose records
                // are all folded into the checkpoint already. Discard them
                // — replaying them (especially meter-only top-ups, which
                // carry no distinguishing sequence number) would regress
                // the recovered state.
                wal.rewrite_with_epoch(&[], checkpoint.epoch)?;
            } else {
                let mut valid = Vec::with_capacity(raw.len());
                for (kind, body) in raw {
                    // A record whose body fails to parse despite an intact
                    // checksum marks the end of the trustworthy prefix,
                    // exactly like a torn tail.
                    match decode_record(kind, &body) {
                        Some(record) => {
                            records.push(record);
                            valid.push((kind, body));
                        }
                        None => break,
                    }
                }
                if valid.len() as u64 != wal.records() {
                    wal.rewrite(&valid)?;
                }
            }
            let since_checkpoint = records.len() as u64;
            logs.insert(
                name.clone(),
                Arc::new(Mutex::new(DeploymentLog {
                    ckpt_path: path,
                    checkpoint,
                    wal,
                    records,
                    since_checkpoint,
                    dirty: true,
                    gapped: false,
                    compactions: 0,
                })),
            );
        }
        Ok(Store { root, config, logs: Mutex::new(logs) })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Sorted names of every persisted deployment.
    pub fn deployments(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.logs.lock().expect("store lock poisoned").keys().cloned().collect();
        names.sort_unstable();
        names
    }

    fn log_of(&self, name: &str) -> Result<Arc<Mutex<DeploymentLog>>, StoreError> {
        self.logs
            .lock()
            .expect("store lock poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NotAttached(name.to_string()))
    }

    /// Restores every persisted deployment that is registered in `registry`
    /// **and** whose durable sequence number is at or ahead of the
    /// registry's — the fresh-restart case. A deployment whose in-memory
    /// history already ran past the store is left untouched (recovery never
    /// moves state backwards), as are persisted deployments the registry does
    /// not know.
    ///
    /// Explicit memory, replication sequence number and energy-meter state
    /// are restored **bit-exactly** from checkpoint + WAL replay.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Codec`] when a snapshot fails to decode or a
    /// deployment's projection dimensionality does not match the registered
    /// model.
    pub fn recover(&self, registry: &LearnerRegistry) -> Result<Vec<RecoveryReport>, StoreError> {
        let mut reports = Vec::new();
        for name in self.deployments() {
            let Ok(live_seq) = registry.replication_seq(&name) else {
                continue;
            };
            let log = self.log_of(&name)?;
            let log = log.lock().expect("deployment log poisoned");
            let replayed = log.records.len() as u64;
            let state = replay(&log.checkpoint, &log.records)?;
            drop(log);
            if state.seq < live_seq {
                // The registry's live history already ran past the store
                // (a promoted follower re-using an old store directory):
                // recovery never moves state backwards, and appending
                // future deltas onto the stale base would replay to a
                // plausible-but-wrong state — so re-baseline the store at
                // the live state instead.
                self.reseed(&name, registry)?;
                continue;
            }
            let classes = registry.recover_deployment(
                &name,
                &state.snapshot,
                state.seq,
                state.spent_mj,
                state.budget_mj,
            )?;
            reports.push(RecoveryReport {
                deployment: name,
                seq: state.seq,
                classes,
                replayed_records: replayed,
            });
        }
        Ok(reports)
    }

    /// Attaches every registered deployment that has no persisted state yet:
    /// writes its initial checkpoint (current snapshot, sequence number and
    /// meter state, read atomically) and creates its empty WAL. Returns the
    /// number of deployments attached.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when writing the checkpoint or log fails.
    pub fn attach(&self, registry: &LearnerRegistry) -> Result<usize, StoreError> {
        let mut attached = 0;
        for name in registry.names() {
            {
                let logs = self.logs.lock().expect("store lock poisoned");
                if logs.contains_key(&name) {
                    continue;
                }
            }
            let (seq, snapshot) = registry.snapshot_with_seq(&name)?;
            let (spent_mj, budget_mj) = registry.energy_state(&name)?;
            let checkpoint = Checkpoint { epoch: 0, seq, spent_mj, budget_mj, snapshot };
            let stem = encode_name(&name);
            let ckpt_path = self.root.join(format!("{stem}.ckpt"));
            checkpoint.write_to(&ckpt_path)?;
            let (mut wal, _) = OpLog::open(&self.root.join(format!("{stem}.wal")))?;
            wal.set_sync_policy(self.config.sync);
            let log = Arc::new(Mutex::new(DeploymentLog {
                ckpt_path,
                checkpoint,
                wal,
                records: Vec::new(),
                since_checkpoint: 0,
                dirty: false,
                gapped: false,
                compactions: 0,
            }));
            self.logs.lock().expect("store lock poisoned").insert(name, log);
            attached += 1;
        }
        Ok(attached)
    }

    /// Recovery followed by attachment — the one call a restarting (or
    /// freshly promoted) process makes before serving: persisted deployments
    /// are restored into the registry, unpersisted ones are checkpointed at
    /// their current state (a promoted follower thereby **adopts its
    /// replicated sequence number** as the store's new baseline).
    ///
    /// # Errors
    ///
    /// See [`Store::recover`] and [`Store::attach`].
    pub fn bootstrap(
        &self,
        registry: &LearnerRegistry,
    ) -> Result<Vec<RecoveryReport>, StoreError> {
        let reports = self.recover(registry)?;
        self.attach(registry)?;
        Ok(reports)
    }

    /// Overwrites a deployment's durable state with a fresh checkpoint of
    /// the registry's **live** state and starts a new empty log generation.
    /// Called by [`Store::recover`] when the registry is ahead of the store;
    /// only safe before traffic is served (bootstrap time).
    fn reseed(&self, name: &str, registry: &LearnerRegistry) -> Result<(), StoreError> {
        let (seq, snapshot) = registry.snapshot_with_seq(name)?;
        let (spent_mj, budget_mj) = registry.energy_state(name)?;
        let log = self.log_of(name)?;
        let mut log = log.lock().expect("deployment log poisoned");
        let checkpoint = Checkpoint {
            epoch: log.checkpoint.epoch + 1,
            seq,
            spent_mj,
            budget_mj,
            snapshot,
        };
        checkpoint.write_to(&log.ckpt_path)?;
        log.wal.rewrite_with_epoch(&[], checkpoint.epoch)?;
        log.records.clear();
        log.since_checkpoint = 0;
        log.dirty = false;
        log.gapped = false;
        log.checkpoint = checkpoint;
        Ok(())
    }

    /// The fully-replayed durable state of one deployment (checkpoint + WAL).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotAttached`] for unknown deployments and
    /// [`StoreError::Codec`] when replay fails.
    pub fn latest_state(&self, name: &str) -> Result<DeploymentState, StoreError> {
        let log = self.log_of(name)?;
        let log = log.lock().expect("deployment log poisoned");
        replay(&log.checkpoint, &log.records)
    }

    /// A cheap replication anchor served **from the store, not the model**:
    /// the latest checkpoint with the (delta-compacted) WAL tail folded in.
    /// Cost is bounded by live classes and never touches the deployment's
    /// model lock — this is what lets a primary re-anchor a far-behind
    /// subscriber without cutting an expensive live snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotAttached`] for unknown deployments,
    /// [`StoreError::Gapped`] when the log is missing a commit (the caller
    /// must fall back to a live snapshot — the store's anchor would lag the
    /// live sequence line forever), and [`StoreError::Codec`] when replay
    /// fails.
    pub fn replication_anchor(&self, name: &str) -> Result<DeploymentState, StoreError> {
        let log = self.log_of(name)?;
        let log = log.lock().expect("deployment log poisoned");
        if log.gapped {
            return Err(StoreError::Gapped(name.to_string()));
        }
        replay(&log.checkpoint, &compact_records(&log.records))
    }

    /// Journals one record, checkpointing when the interval is reached. A
    /// failed append **gaps** the log: the in-memory commit is missing from
    /// durable state, so every further append for this deployment is refused
    /// (replaying later deltas on the missing base would produce a
    /// plausible-but-wrong state) until a restart recovers the durable
    /// prefix. The failed request itself is reported to its client, so a
    /// gap only ever covers unacknowledged commits.
    fn journal(&self, name: &str, record: WalRecord) -> Result<(), StoreError> {
        let log = self.log_of(name)?;
        let mut log = log.lock().expect("deployment log poisoned");
        if log.gapped {
            return Err(StoreError::Gapped(name.to_string()));
        }
        let (kind, body) = encode_record(&record);
        if let Err(e) = log.wal.append(kind, &body) {
            log.gapped = true;
            return Err(e);
        }
        log.records.push(record);
        log.since_checkpoint += 1;
        log.dirty = true;
        if log.since_checkpoint >= self.config.checkpoint_interval {
            checkpoint_locked(&mut log)?;
        }
        Ok(())
    }

    /// Journals a full explicit-memory install (migration import, restore):
    /// the wire server calls this after a successful `Import`, with the
    /// post-install sequence number and meter state.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotAttached`] for unknown deployments and
    /// [`StoreError::Io`] when the append fails.
    pub fn journal_import(
        &self,
        name: &str,
        seq: u64,
        snapshot: &[u8],
        spent_mj: f64,
        budget_mj: Option<f64>,
    ) -> Result<(), StoreError> {
        self.journal(
            name,
            WalRecord::Import { seq, snapshot: snapshot.to_vec(), spent_mj, budget_mj },
        )
    }

    /// Rolls a deployment's WAL into a fresh full-snapshot checkpoint and
    /// truncates the log. Returns the checkpoint's sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotAttached`] for unknown deployments, a codec
    /// error when replay fails, and [`StoreError::Io`] on write failures.
    pub fn checkpoint(&self, name: &str) -> Result<u64, StoreError> {
        let log = self.log_of(name)?;
        let mut log = log.lock().expect("deployment log poisoned");
        checkpoint_locked(&mut log)?;
        Ok(log.checkpoint.seq)
    }

    /// Delta-compacts one deployment's WAL in place. Returns `true` when the
    /// log shrank (a rewrite happened), `false` when compaction would not
    /// help.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotAttached`] for unknown deployments and
    /// [`StoreError::Io`] when the rewrite fails.
    pub fn compact(&self, name: &str) -> Result<bool, StoreError> {
        let log = self.log_of(name)?;
        let mut log = log.lock().expect("deployment log poisoned");
        // The attempt itself clears the dirty bit: an incompressible log is
        // not retried until new records arrive.
        log.dirty = false;
        let compacted = compact_records(&log.records);
        if compacted.len() >= log.records.len() {
            return Ok(false);
        }
        let raw: Vec<_> = compacted.iter().map(encode_record).collect();
        log.wal.rewrite(&raw)?;
        log.records = compacted;
        log.compactions += 1;
        Ok(true)
    }

    /// One maintenance sweep: delta-compacts every deployment whose WAL holds
    /// at least [`compact_min_records`](StoreConfig::compact_min_records)
    /// records. Returns the number of logs that shrank. This is the body a
    /// background maintenance thread polls (the wire server runs one when
    /// serving with a store).
    ///
    /// # Errors
    ///
    /// Returns the first compaction failure; earlier compactions stand.
    pub fn maintenance(&self) -> Result<u64, StoreError> {
        let mut compacted = 0;
        for name in self.deployments() {
            let needs = {
                let log = self.log_of(&name)?;
                let log = log.lock().expect("deployment log poisoned");
                log.dirty && log.records.len() as u64 >= self.config.compact_min_records
            };
            if needs && self.compact(&name)? {
                compacted += 1;
            }
        }
        Ok(compacted)
    }
}

/// Replays the mirror into a fresh checkpoint, writes it atomically and
/// truncates the WAL. Never touches the deployment's model lock — the store
/// reconstructs the full state from its own log.
fn checkpoint_locked(log: &mut DeploymentLog) -> Result<(), StoreError> {
    if log.records.is_empty() {
        return Ok(());
    }
    let state = replay(&log.checkpoint, &log.records)?;
    // The new generation: checkpoint first (atomic rename), then the empty
    // log stamped with the matching epoch. A crash in between leaves the
    // old-epoch WAL behind, which the next open detects and discards — its
    // records are all folded into the just-renamed checkpoint.
    let checkpoint = Checkpoint {
        epoch: log.checkpoint.epoch + 1,
        seq: state.seq,
        spent_mj: state.spent_mj,
        budget_mj: state.budget_mj,
        snapshot: state.snapshot,
    };
    checkpoint.write_to(&log.ckpt_path)?;
    log.wal.rewrite_with_epoch(&[], checkpoint.epoch)?;
    log.records.clear();
    log.since_checkpoint = 0;
    log.checkpoint = checkpoint;
    Ok(())
}

impl CommitJournal for Store {
    fn journal_learn(
        &self,
        commit: &LearnCommit,
        spent_mj: f64,
        budget_mj: Option<f64>,
    ) -> Result<(), String> {
        let record = WalRecord::Learn {
            seq: commit.seq,
            total_classes: commit.total_classes as u64,
            updates: commit
                .updates
                .iter()
                .map(|(class, prototype)| (*class as u64, prototype.clone()))
                .collect(),
            spent_mj,
            budget_mj,
        };
        self.journal(&commit.deployment, record).map_err(|e| e.to_string())
    }

    fn journal_top_up(
        &self,
        deployment: &str,
        seq: u64,
        spent_mj: f64,
        budget_mj: Option<f64>,
    ) -> Result<(), String> {
        self.journal(deployment, WalRecord::TopUp { seq, spent_mj, budget_mj })
            .map_err(|e| e.to_string())
    }

    fn durability_stats(&self, deployment: &str) -> Option<DurabilityStats> {
        let log = self.log_of(deployment).ok()?;
        let log = log.lock().expect("deployment log poisoned");
        Some(DurabilityStats {
            wal_records: log.wal.records(),
            wal_bytes: log.wal.bytes(),
            compactions: log.compactions,
            last_checkpoint_seq: log.checkpoint.seq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_encoding_roundtrips_hostile_names() {
        for name in ["tenant-a", "UPPER_case-9", "sp ace", "sl/ash", "uni-ø", "%percent", ""] {
            let stem = encode_name(name);
            assert!(
                stem.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'%'),
                "stem {stem:?} contains unsafe bytes"
            );
            assert_eq!(decode_name(&stem).as_deref(), Some(name));
        }
        // Distinct names never collide.
        assert_ne!(encode_name("a/b"), encode_name("a%2fb"));
        assert!(decode_name("%zz").is_none());
    }
}
