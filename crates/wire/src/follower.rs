//! Follower mode: a replica process that tails a primary's snapshot stream
//! and serves read-only traffic.
//!
//! A follower owns a local [`LearnerRegistry`] with the same deployments as
//! its primary (same backbone/FCR weights — typically both sides loaded the
//! same pretrained model). [`Follower::run`] then
//!
//! 1. starts a local [`WireServer`] with
//!    [`read_only`](ofscil_serve::ServeConfig::read_only) forced on, so the
//!    replica answers `Infer`/`Stats`/`Snapshot` over its own socket while
//!    rejecting writes with a typed
//!    [`ReadOnlyReplica`](ofscil_serve::ServeError::ReadOnlyReplica) error,
//! 2. opens one upstream connection per tailed deployment, subscribes, and
//!    applies the stream: the full-snapshot anchor through
//!    [`LearnerRegistry::restore`], every sequence-numbered delta through
//!    [`LearnerRegistry::apply_prototype_updates`] — both bypass the storage
//!    quantizer, so the replica's explicit memory is **bit-exact**: its
//!    snapshot bytes hash identically to the primary's and its predictions
//!    are bit-identical.
//!
//! Deltas carry consecutive sequence numbers; a delta at or below the
//! snapshot anchor is already contained and skipped, a skipped number is a
//! [`WireError::ReplicationGap`]. A gap no longer halts the tail for good:
//! the follower's state can no longer be proven exact from deltas alone, so
//! it **resyncs** — it drops the subscription and resubscribes, restoring a
//! fresh full-snapshot anchor that by construction contains everything up to
//! its sequence number. The same recovery runs when the primary drops the
//! subscriber for lagging past the bounded replication queue. Resyncs are
//! bounded by [`FollowerConfig::resync_limit`]; once exhausted, the error is
//! surfaced through [`FollowerHandle::replication_error`] as before.

use crate::client::WireClient;
use crate::codec::ReplEvent;
use crate::error::{PayloadError, WireError};
use crate::net::BoundAddr;
use crate::server::{WireConfig, WireHandle, WireServer};
use ofscil_obs::{Event, EventKind, EventSink, Obs};
use ofscil_serve::LearnerRegistry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// How often tail threads wake to poll their stop flag.
const POLL: Duration = Duration::from_millis(20);

/// Configuration of a [`Follower`].
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// Address of the primary's wire server.
    pub upstream: BoundAddr,
    /// Deployments to tail. Each must exist on the primary and be registered
    /// locally with a matching projection dimensionality.
    pub deployments: Vec<String>,
    /// The follower's own wire server configuration.
    /// [`ServeConfig::read_only`](ofscil_serve::ServeConfig::read_only) is
    /// forced on regardless of what it says.
    pub wire: WireConfig,
    /// How many times a deployment's tail may automatically resubscribe from
    /// a fresh full-snapshot anchor after a replication gap (or after being
    /// dropped for lagging) before the error is surfaced. Zero restores the
    /// old halt-on-gap behaviour.
    pub resync_limit: u64,
    /// Routing frontend to announce this follower to, if any. When set,
    /// [`Follower::run`] sends one best-effort
    /// [`AdvertiseFollower`](crate::codec::WireRequest::AdvertiseFollower)
    /// (upstream address + the follower's own bound address) right after the
    /// local server binds, so a control plane watching the router knows this
    /// replica is a promotion candidate. Failures are swallowed — an
    /// unreachable router must not stop the replica from serving.
    pub advertise: Option<BoundAddr>,
    /// Observability pipeline for the replica itself, if any. When set, the
    /// follower's local server answers `ObsQuery` from this handle's store,
    /// and the tail threads stamp the replication lifecycle into it: one
    /// [`ReplApply`](ofscil_obs::EventKind::ReplApply) per applied delta
    /// (carrying the commit sequence number) and one
    /// [`Resync`](ofscil_obs::EventKind::Resync) per fresh full-snapshot
    /// re-anchor (carrying the anchor's sequence number). A router including
    /// this replica in its scatter-gather can therefore show replication lag
    /// and recovery next to the primary's own events.
    pub obs: Option<Obs>,
}

impl FollowerConfig {
    /// Tails `deployments` from `upstream`, serving locally on an ephemeral
    /// loopback TCP port, with up to 3 automatic resyncs per deployment.
    pub fn new(upstream: BoundAddr, deployments: &[&str]) -> Self {
        FollowerConfig {
            upstream,
            deployments: deployments.iter().map(|d| d.to_string()).collect(),
            wire: WireConfig::tcp_loopback(),
            resync_limit: 3,
            advertise: None,
            obs: None,
        }
    }

    /// Sets the automatic-resync bound (builder style).
    #[must_use]
    pub fn with_resync_limit(mut self, resync_limit: u64) -> Self {
        self.resync_limit = resync_limit;
        self
    }

    /// Announces the follower to a routing frontend at `router` (builder
    /// style) — see [`FollowerConfig::advertise`].
    #[must_use]
    pub fn with_advertise(mut self, router: BoundAddr) -> Self {
        self.advertise = Some(router);
        self
    }

    /// Attaches an observability pipeline to the replica (builder style) —
    /// see [`FollowerConfig::obs`].
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }
}

/// Per-deployment replication progress, shared between tail threads and the
/// handle.
#[derive(Debug, Default)]
struct ProgressState {
    /// Highest applied sequence number per deployment (absent before the
    /// full-snapshot anchor arrived).
    applied: HashMap<String, u64>,
    /// First error of each failed tail, by deployment.
    errors: HashMap<String, String>,
    /// Automatic resubscribes performed per deployment.
    resyncs: HashMap<String, u64>,
}

#[derive(Debug, Default)]
struct Progress {
    state: Mutex<ProgressState>,
    changed: Condvar,
}

impl Progress {
    fn record_applied(&self, deployment: &str, seq: u64) {
        let mut state = self.state.lock().expect("progress lock poisoned");
        state.applied.insert(deployment.to_string(), seq);
        drop(state);
        self.changed.notify_all();
    }

    fn record_error(&self, deployment: &str, error: &WireError) {
        let mut state = self.state.lock().expect("progress lock poisoned");
        state.errors.entry(deployment.to_string()).or_insert_with(|| error.to_string());
        drop(state);
        self.changed.notify_all();
    }

    fn record_resync(&self, deployment: &str) {
        let mut state = self.state.lock().expect("progress lock poisoned");
        *state.resyncs.entry(deployment.to_string()).or_insert(0) += 1;
        drop(state);
        self.changed.notify_all();
    }
}

/// Handle the body of [`Follower::run`] receives.
#[derive(Debug)]
pub struct FollowerHandle<'a> {
    server: &'a WireHandle,
    progress: &'a Progress,
}

impl FollowerHandle<'_> {
    /// The follower's own bound address — connect a
    /// [`WireClient`](crate::WireClient) here for read-only traffic.
    pub fn addr(&self) -> &BoundAddr {
        self.server.addr()
    }

    /// The highest replication sequence number applied for a deployment
    /// (`None` before the full snapshot landed).
    pub fn applied_seq(&self, deployment: &str) -> Option<u64> {
        self.progress
            .state
            .lock()
            .expect("progress lock poisoned")
            .applied
            .get(deployment)
            .copied()
    }

    /// How many times the deployment's tail resubscribed from a fresh
    /// full-snapshot anchor after a replication gap or a lag drop.
    pub fn resyncs(&self, deployment: &str) -> u64 {
        self.progress
            .state
            .lock()
            .expect("progress lock poisoned")
            .resyncs
            .get(deployment)
            .copied()
            .unwrap_or(0)
    }

    /// The first replication error of a deployment's tail, if it failed.
    pub fn replication_error(&self, deployment: &str) -> Option<String> {
        self.progress
            .state
            .lock()
            .expect("progress lock poisoned")
            .errors
            .get(deployment)
            .cloned()
    }

    /// Blocks until the deployment has applied at least sequence number
    /// `seq` — the synchronization point "every commit the primary
    /// acknowledged up to here is now visible on the replica".
    ///
    /// # Errors
    ///
    /// Returns the tail's replication error if it failed, or a
    /// [`WireError::Protocol`] on timeout.
    pub fn wait_for_seq(
        &self,
        deployment: &str,
        seq: u64,
        timeout: Duration,
    ) -> Result<u64, WireError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.progress.state.lock().expect("progress lock poisoned");
        loop {
            if let Some(&applied) = state.applied.get(deployment) {
                if applied >= seq {
                    return Ok(applied);
                }
            }
            if let Some(error) = state.errors.get(deployment) {
                return Err(WireError::Protocol(format!(
                    "replication tail for {deployment:?} failed: {error}"
                )));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(WireError::Protocol(format!(
                    "timed out waiting for {deployment:?} to reach seq {seq}"
                )));
            }
            let (next, _) = self
                .progress
                .changed
                .wait_timeout(state, deadline - now)
                .expect("progress lock poisoned");
            state = next;
        }
    }
}

/// A snapshot-replicated read replica: local read-only wire server plus one
/// stream-tailing thread per deployment.
#[derive(Debug)]
pub struct Follower;

impl Follower {
    /// Runs a follower session: the local read-only server and the tail
    /// threads live for exactly the duration of `body`.
    ///
    /// Tail failures (an unreachable primary, a replication gap) do not tear
    /// the session down — the replica keeps serving whatever state it has —
    /// but they are surfaced through
    /// [`FollowerHandle::replication_error`] and fail any
    /// [`FollowerHandle::wait_for_seq`] on the affected deployment.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] when the local server cannot bind and
    /// [`WireError::Runtime`] when the serve configuration is invalid.
    pub fn run<T, F>(
        registry: &LearnerRegistry,
        config: &FollowerConfig,
        body: F,
    ) -> Result<T, WireError>
    where
        F: FnOnce(&FollowerHandle<'_>) -> T,
    {
        let mut wire = config.wire.clone();
        wire.serve.read_only = true;
        let progress = Progress::default();
        let stop = AtomicBool::new(false);

        WireServer::run_observed(registry, &wire, None, config.obs.as_ref(), |server| {
            // Best-effort advertisement: tell the routing frontend (if any)
            // that this replica tails `upstream` and where it listens, so a
            // control plane can pick it as a promotion candidate. A dead or
            // absent router is not a reason to refuse to serve.
            if let Some(router) = &config.advertise {
                let _ = WireClient::connect(router).and_then(|mut client| {
                    client.advertise_follower(
                        &config.upstream.to_string(),
                        &server.addr().to_string(),
                    )
                });
            }
            std::thread::scope(|scope| {
                for deployment in &config.deployments {
                    let progress = &progress;
                    let stop = &stop;
                    let upstream = &config.upstream;
                    let resync_limit = config.resync_limit;
                    let sink = config.obs.as_ref().map(|obs| obs.sink().clone());
                    scope.spawn(move || {
                        tail_deployment(
                            registry, upstream, deployment, progress, stop, resync_limit,
                            sink.as_ref(),
                        );
                    });
                }
                let handle = FollowerHandle { server, progress: &progress };
                let _stop_on_exit = crate::server::ShutdownOnDrop::new(&stop);
                body(&handle)
            })
        })
    }

    /// Promotes a follower's replicated registry to a **writable primary**
    /// backed by a durable store — the failover path once the old primary is
    /// gone.
    ///
    /// The store is [`bootstrap`](ofscil_store::Store::bootstrap)ped against
    /// the registry first, which covers both failover flavours:
    ///
    /// * a fresh store directory: every deployment is checkpointed at its
    ///   replicated state, so the store **adopts the follower's replication
    ///   sequence numbers** as its baseline — a subscriber that re-attaches
    ///   to the promoted primary resumes from a consistent anchor and tails
    ///   the new writes,
    /// * the dead primary's own store directory (shared storage): any
    ///   deployment whose durable history ran past the follower's replicated
    ///   state is recovered from the log first (recovery never moves state
    ///   backwards), and the rest are checkpointed as above.
    ///
    /// The promoted server then runs exactly like
    /// [`WireServer::run_with_store`]: writable, journaled, serving
    /// replication subscribers from its checkpoints.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Protocol`] when the store bootstrap fails,
    /// [`WireError::Io`] when binding fails and [`WireError::Runtime`] when
    /// the serve configuration is invalid.
    pub fn promote<T, F>(
        registry: &LearnerRegistry,
        store: &ofscil_store::Store,
        config: &WireConfig,
        body: F,
    ) -> Result<T, WireError>
    where
        F: FnOnce(&WireHandle) -> T,
    {
        Follower::promote_observed(registry, store, config, None, body)
    }

    /// Like [`Follower::promote`], but with an observability handle: right
    /// after the store bootstrap, one `Promotion` event is emitted per
    /// registered deployment (carrying the replication sequence number the
    /// new primary adopts), and the promoted server runs with the handle
    /// attached — its timeline picks up exactly where the dead primary's
    /// left off, which is what lets a routed `ObsQuery` stitch a tenant's
    /// trajectory across the failover.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Protocol`] when the store bootstrap fails,
    /// [`WireError::Io`] when binding fails and [`WireError::Runtime`] when
    /// the serve configuration is invalid.
    pub fn promote_observed<T, F>(
        registry: &LearnerRegistry,
        store: &ofscil_store::Store,
        config: &WireConfig,
        obs: Option<&ofscil_obs::Obs>,
        body: F,
    ) -> Result<T, WireError>
    where
        F: FnOnce(&WireHandle) -> T,
    {
        store.bootstrap(registry).map_err(|e| {
            WireError::Protocol(format!("promotion bootstrap failed: {e}"))
        })?;
        if let Some(obs) = obs {
            for name in registry.names() {
                let seq = registry.replication_seq(&name).unwrap_or(0);
                obs.sink().emit(
                    ofscil_obs::Event::new(ofscil_obs::EventKind::Promotion, &name)
                        .with_seq(seq),
                );
            }
        }
        let mut wire = config.clone();
        wire.serve.read_only = false;
        WireServer::run_observed(registry, &wire, Some(store), obs, body)
    }
}

/// Returns `true` for tail failures a fresh full-snapshot anchor repairs: a
/// sequence gap (the primary's memory mutated outside the commit stream —
/// a restore, an imported migration) and the typed lag drop the primary
/// sends before disconnecting a subscriber that fell behind its bounded
/// replication queue.
fn resyncable(error: &WireError) -> bool {
    matches!(
        error,
        WireError::ReplicationGap { .. }
            | WireError::Remote(ofscil_serve::ServeError::ReplicationLagged { .. })
    )
}

/// Tails one deployment's snapshot stream until stopped or broken,
/// resubscribing from a fresh anchor up to `resync_limit` times when the
/// stream gaps or the primary drops the subscription for lagging.
fn tail_deployment(
    registry: &LearnerRegistry,
    upstream: &BoundAddr,
    deployment: &str,
    progress: &Progress,
    stop: &AtomicBool,
    resync_limit: u64,
    sink: Option<&EventSink>,
) {
    let mut resyncs = 0;
    loop {
        let resynced = resyncs > 0;
        match tail_inner(registry, upstream, deployment, progress, stop, sink, resynced) {
            Ok(()) => return,
            Err(error)
                if resyncable(&error) && resyncs < resync_limit
                    && !stop.load(Ordering::Acquire) =>
            {
                resyncs += 1;
                progress.record_resync(deployment);
            }
            Err(error) => {
                progress.record_error(deployment, &error);
                return;
            }
        }
    }
}

fn tail_inner(
    registry: &LearnerRegistry,
    upstream: &BoundAddr,
    deployment: &str,
    progress: &Progress,
    stop: &AtomicBool,
    sink: Option<&EventSink>,
    resynced: bool,
) -> Result<(), WireError> {
    let client = WireClient::connect(upstream)?;
    client.set_read_timeout(Some(POLL))?;
    let mut stream = client.subscribe(deployment)?;
    let mut anchor: Option<u64> = None;
    while let Some(event) = stream.next_event(Some(stop))? {
        match event {
            ReplEvent::Full { seq, snapshot } => {
                // Adopt the anchor's sequence number exactly: the replica's
                // registry counts in the primary's sequence line (each
                // consecutive delta then advances it by one), which is what
                // lets a promoted follower continue that line.
                registry
                    .restore_at(deployment, &snapshot, seq)
                    .map_err(WireError::Runtime)?;
                anchor = Some(seq);
                progress.record_applied(deployment, seq);
                if resynced {
                    // This full snapshot is a recovery re-anchor, not the
                    // initial subscribe — stamp it with the sequence number
                    // the replica jumped to.
                    if let Some(sink) = sink {
                        sink.emit(Event::new(EventKind::Resync, deployment).with_seq(seq));
                    }
                }
            }
            ReplEvent::Delta { seq, total_classes, updates } => {
                let Some(applied) = anchor else {
                    return Err(WireError::Protocol(
                        "replication delta arrived before the full-snapshot anchor".into(),
                    ));
                };
                if seq <= applied {
                    // Already contained in the snapshot anchor.
                    continue;
                }
                if seq != applied + 1 {
                    return Err(WireError::ReplicationGap {
                        deployment: deployment.to_string(),
                        expected: applied + 1,
                        got: seq,
                    });
                }
                let updates = decode_updates(&updates)?;
                let total = registry
                    .apply_prototype_updates(deployment, &updates)
                    .map_err(WireError::Runtime)?;
                if total as u64 != total_classes {
                    return Err(WireError::Protocol(format!(
                        "replica diverged: {total} classes after seq {seq}, primary has \
                         {total_classes}"
                    )));
                }
                anchor = Some(seq);
                progress.record_applied(deployment, seq);
                if let Some(sink) = sink {
                    // ReplApply, not Learn: a merged timeline must count the
                    // primary's learn exactly once, with the replica's apply
                    // visible as its own replication-lifecycle row.
                    sink.emit(Event::new(EventKind::ReplApply, deployment).with_seq(seq));
                }
            }
        }
    }
    Ok(())
}

fn decode_updates(updates: &[(u64, Vec<f32>)]) -> Result<Vec<(usize, Vec<f32>)>, WireError> {
    updates
        .iter()
        .map(|(class, prototype)| {
            usize::try_from(*class)
                .map(|class| (class, prototype.clone()))
                .map_err(|_| {
                    WireError::Payload(PayloadError::ValueOverflow {
                        field: "class",
                        value: *class,
                    })
                })
        })
        .collect()
}
