//! Socket abstraction: one listener/stream pair that is a TCP socket on
//! every platform and additionally a Unix-domain socket where those exist.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;

/// Where a [`WireServer`](crate::WireServer) should listen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireBind {
    /// A TCP address, e.g. `"127.0.0.1:0"` (port 0 picks an ephemeral port;
    /// the bound address is reported back through the server handle).
    Tcp(String),
    /// A Unix-domain socket path. A stale socket file at the path is
    /// removed before binding.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// The address a server actually bound — connectable via
/// [`WireClient::connect`](crate::WireClient::connect).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundAddr {
    /// A bound TCP socket address.
    Tcp(SocketAddr),
    /// A bound Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl BoundAddr {
    /// Inverse of the [`Display`](std::fmt::Display) form: parses
    /// `tcp://host:port` or `unix:///path` back into an address, so an
    /// advertised follower string (which travels the wire as text) can be
    /// dialed. Returns `None` for anything else — including a bare
    /// `host:port` without its scheme.
    pub fn parse(s: &str) -> Option<BoundAddr> {
        if let Some(rest) = s.strip_prefix("tcp://") {
            return rest.parse().ok().map(BoundAddr::Tcp);
        }
        #[cfg(unix)]
        if let Some(rest) = s.strip_prefix("unix://") {
            if !rest.is_empty() {
                return Some(BoundAddr::Unix(PathBuf::from(rest)));
            }
        }
        None
    }
}

impl std::fmt::Display for BoundAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundAddr::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            BoundAddr::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// A bound listening socket.
///
/// Public so layers above the wire protocol (the `ofscil_router` frontend)
/// can accept connections and speak frames themselves.
pub enum WireListener {
    /// A bound TCP listener.
    Tcp(TcpListener),
    /// A bound Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl WireListener {
    /// Binds per the configuration and reports the concrete bound address.
    pub fn bind(bind: &WireBind) -> io::Result<(WireListener, BoundAddr)> {
        match bind {
            WireBind::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                let local = listener.local_addr()?;
                Ok((WireListener::Tcp(listener), BoundAddr::Tcp(local)))
            }
            #[cfg(unix)]
            WireBind::Unix(path) => {
                // A previous server that was killed leaves its socket file
                // behind; rebinding over it is the expected operation.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                Ok((WireListener::Unix(listener), BoundAddr::Unix(path.clone())))
            }
        }
    }

    /// Switches the listener between blocking and nonblocking accepts.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            WireListener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            WireListener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// Accepts one connection (honouring the listener's blocking mode).
    pub fn accept(&self) -> io::Result<WireStream> {
        match self {
            WireListener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                Ok(WireStream::Tcp(stream))
            }
            #[cfg(unix)]
            WireListener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok(WireStream::Unix(stream))
            }
        }
    }
}

/// One connected socket, either family.
#[derive(Debug)]
pub enum WireStream {
    /// A connected TCP stream.
    Tcp(TcpStream),
    /// A connected Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl WireStream {
    /// Connects to a server's bound address.
    pub fn connect(addr: &BoundAddr) -> io::Result<WireStream> {
        match addr {
            BoundAddr::Tcp(addr) => WireStream::connect_tcp(addr),
            #[cfg(unix)]
            BoundAddr::Unix(path) => Ok(WireStream::Unix(UnixStream::connect(path)?)),
        }
    }

    /// Connects to a TCP address with Nagle batching disabled.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<WireStream> {
        let stream = TcpStream::connect(addr)?;
        // Frames are small request/response units; Nagle batching would put
        // a delayed-ACK round trip into every call.
        stream.set_nodelay(true)?;
        Ok(WireStream::Tcp(stream))
    }

    /// Applies connection-level tuning a server wants on accepted sockets:
    /// no Nagle batching, a short read timeout so connection threads can
    /// poll their shutdown flag between bytes, and a bounded write timeout
    /// so a peer that stops reading (full TCP window) cannot pin a
    /// connection thread — and with it the server's teardown — forever; the
    /// blocked write errors out and the connection is dropped instead.
    pub fn configure_for_server(&self, read_timeout: Duration) -> io::Result<()> {
        if let WireStream::Tcp(stream) = self {
            stream.set_nodelay(true)?;
        }
        self.set_read_timeout(Some(read_timeout))?;
        self.set_write_timeout(Some(Duration::from_secs(5)))
    }

    /// Applies (or clears) a socket read timeout.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            WireStream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Applies (or clears) a socket write timeout.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.set_write_timeout(timeout),
            #[cfg(unix)]
            WireStream::Unix(s) => s.set_write_timeout(timeout),
        }
    }
}

impl Read for WireStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            WireStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for WireStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            WireStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            WireStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            WireStream::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_addr_parse_inverts_display() {
        let tcp = BoundAddr::Tcp("127.0.0.1:9001".parse().unwrap());
        assert_eq!(BoundAddr::parse(&tcp.to_string()), Some(tcp));
        #[cfg(unix)]
        {
            let unix = BoundAddr::Unix(PathBuf::from("/tmp/ofscil.sock"));
            assert_eq!(BoundAddr::parse(&unix.to_string()), Some(unix));
        }
        assert_eq!(BoundAddr::parse("127.0.0.1:9001"), None);
        assert_eq!(BoundAddr::parse("tcp://not-an-addr"), None);
        assert_eq!(BoundAddr::parse("unix://"), None);
        assert_eq!(BoundAddr::parse(""), None);
    }
}
