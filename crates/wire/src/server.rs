//! The blocking socket frontend of a serving runtime.
//!
//! ```text
//!  sockets ──frames──▶ connection threads ──ServeClient──▶ ServeRuntime
//!                          │ decode request, call, encode response
//!                          │
//!                          └─ Subscribe: register with the replication hub,
//!                             send one full snapshot, then stream deltas
//!
//!  ServeRuntime ──LearnCommit sink──▶ hub thread ──fan-out──▶ subscribers
//! ```
//!
//! Everything is `std` and blocking: one thread per connection inside a
//! `thread::scope`, a nonblocking accept loop that polls a shutdown flag,
//! and read timeouts on accepted sockets so connection threads notice
//! shutdown between frames. The serving runtime's own backpressure
//! ([`ServeConfig::queue_depth`](ofscil_serve::ServeConfig)) is what keeps
//! slow sockets from buffering unbounded work behind the dispatcher.

use crate::codec::{decode_request, encode_response, ReplEvent, WireRequest, WireResponse};
use crate::error::WireError;
use crate::frame::{read_frame, ReadEvent, DEFAULT_MAX_PAYLOAD};
use crate::net::{BoundAddr, WireBind, WireListener, WireStream};
use ofscil_obs::{Event, EventKind, Obs, ObsCursor, ObsQuery, TailBatch};
use ofscil_serve::{LearnCommit, LearnerRegistry, ServeClient, ServeConfig, ServeError, ServeRuntime};
use ofscil_store::{ObsSpill, Store, StoreError, SPILL_FILE};
use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// How often blocked server loops wake to poll the shutdown flag.
const POLL: Duration = Duration::from_millis(20);

/// Raises a shutdown flag when dropped — including during unwinding, so a
/// panicking server body still releases the accept, hub and connection
/// threads its scope must join (the panic propagates instead of
/// deadlocking the teardown). Shared by every scoped server in this crate
/// and by frame-speaking frontends above it (the `ofscil_router` frontend).
pub struct ShutdownOnDrop<'a> {
    flag: &'a AtomicBool,
}

impl<'a> ShutdownOnDrop<'a> {
    /// Arms the guard: `flag` is raised when the returned value drops.
    pub fn new(flag: &'a AtomicBool) -> Self {
        ShutdownOnDrop { flag }
    }
}

impl Drop for ShutdownOnDrop<'_> {
    fn drop(&mut self) {
        self.flag.store(true, Ordering::Release);
    }
}

/// Configuration of a [`WireServer`] (and, via
/// [`FollowerConfig`](crate::FollowerConfig), of a follower's local server).
#[derive(Debug, Clone, PartialEq)]
pub struct WireConfig {
    /// Where to listen.
    pub bind: WireBind,
    /// Configuration of the serving runtime behind the socket. Set
    /// `queue_depth` here to shed load from slow peers instead of buffering
    /// without bound.
    pub serve: ServeConfig,
    /// Maximum accepted frame payload in bytes (default 16 MiB).
    pub max_payload: usize,
}

impl WireConfig {
    /// TCP on an ephemeral loopback port with default serve settings — the
    /// configuration examples and tests want. The actually bound port is
    /// reported through [`WireHandle::addr`].
    pub fn tcp_loopback() -> Self {
        WireConfig {
            bind: WireBind::Tcp("127.0.0.1:0".into()),
            serve: ServeConfig::default(),
            max_payload: DEFAULT_MAX_PAYLOAD,
        }
    }

    /// Sets the serve-runtime configuration (builder style).
    #[must_use]
    pub fn with_serve(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }

    /// Sets the bind target (builder style).
    #[must_use]
    pub fn with_bind(mut self, bind: WireBind) -> Self {
        self.bind = bind;
        self
    }
}

/// Handle the body of [`WireServer::run`] receives.
#[derive(Debug)]
pub struct WireHandle {
    addr: BoundAddr,
}

impl WireHandle {
    /// The concrete address the server bound (resolves ephemeral ports).
    pub fn addr(&self) -> &BoundAddr {
        &self.addr
    }
}

/// Commits a subscriber may fall behind by before it is disconnected. The
/// queue is bounded so a follower whose socket stalls cannot make the
/// primary buffer commits without limit — the lagging subscriber is dropped
/// (with a typed error frame) and must resubscribe for a fresh anchor.
const REPL_QUEUE_DEPTH: usize = 1024;

/// Fan-out point between the runtime's commit sink and the per-subscriber
/// replication streams.
pub(crate) struct ReplHub {
    subscribers: Mutex<HashMap<String, Vec<mpsc::SyncSender<Arc<LearnCommit>>>>>,
}

impl ReplHub {
    pub fn new() -> Self {
        ReplHub { subscribers: Mutex::new(HashMap::new()) }
    }

    /// Registers a subscriber for one deployment's commits. Registration
    /// happens *before* the subscriber takes its full snapshot, so a commit
    /// landing in between is delivered as a delta the follower recognises as
    /// already-contained (its seq is at or below the snapshot's).
    pub fn register(&self, deployment: &str) -> mpsc::Receiver<Arc<LearnCommit>> {
        let (tx, rx) = mpsc::sync_channel(REPL_QUEUE_DEPTH);
        self.subscribers
            .lock()
            .expect("hub lock poisoned")
            .entry(deployment.to_string())
            .or_default()
            .push(tx);
        rx
    }

    /// Forwards one commit to every live subscriber of its deployment,
    /// dropping subscribers whose connection ended or whose bounded queue is
    /// full (a stalled socket must not grow the primary's memory).
    pub fn forward(&self, commit: LearnCommit) {
        let mut subscribers = self.subscribers.lock().expect("hub lock poisoned");
        let Some(list) = subscribers.get_mut(&commit.deployment) else { return };
        let commit = Arc::new(commit);
        list.retain(|tx| tx.try_send(Arc::clone(&commit)).is_ok());
        if list.is_empty() {
            subscribers.remove(&commit.deployment);
        }
    }
}

fn hub_loop(hub: &ReplHub, commits: mpsc::Receiver<LearnCommit>, shutdown: &AtomicBool) {
    loop {
        match commits.recv_timeout(POLL) {
            Ok(commit) => hub.forward(commit),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// The socket frontend: binds a listener, serves connections for exactly
/// the duration of the body, then tears everything down deterministically.
#[derive(Debug)]
pub struct WireServer;

impl WireServer {
    /// Runs a wire-serving session. The listener, the serving runtime, the
    /// replication hub and every connection thread live for exactly the
    /// duration of `body`, which receives the handle carrying the bound
    /// address. Clients in other processes connect with
    /// [`WireClient`](crate::WireClient).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] when binding fails and
    /// [`WireError::Runtime`] when the serve configuration is invalid.
    pub fn run<T, F>(
        registry: &LearnerRegistry,
        config: &WireConfig,
        body: F,
    ) -> Result<T, WireError>
    where
        F: FnOnce(&WireHandle) -> T,
    {
        WireServer::run_with_store(registry, config, None, body)
    }

    /// Like [`WireServer::run`], but backed by a durable
    /// [`Store`](ofscil_store::Store):
    ///
    /// * every committed `LearnOnline` and budget top-up is journaled to the
    ///   store's write-ahead log before its reply (via the serve runtime's
    ///   [`CommitJournal`](ofscil_serve::CommitJournal) hook), and a
    ///   successful `Import` is journaled as a full-state record,
    /// * replication subscribers are anchored **from the store's latest
    ///   checkpoint** (plus the delta-compacted WAL tail) instead of an
    ///   expensive live snapshot under the model lock, and the `ReAnchor`
    ///   request serves the same cheap anchor as a one-shot response,
    /// * a background maintenance thread runs the store's delta compaction
    ///   ([`Store::maintenance`]) so replay cost stays bounded by live
    ///   classes while the server is up.
    ///
    /// The caller is responsible for calling [`Store::bootstrap`] (recover +
    /// attach) *before* serving — keeping recovery explicit means a test or
    /// an operator can inspect what was restored.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] when binding fails and
    /// [`WireError::Runtime`] when the serve configuration is invalid.
    pub fn run_with_store<T, F>(
        registry: &LearnerRegistry,
        config: &WireConfig,
        store: Option<&Store>,
        body: F,
    ) -> Result<T, WireError>
    where
        F: FnOnce(&WireHandle) -> T,
    {
        WireServer::run_observed(registry, config, store, None, body)
    }

    /// Like [`WireServer::run_with_store`], but with an observability handle
    /// attached:
    ///
    /// * the serving runtime emits `Infer`/`Learn`/`Reject`/`TopUp` events
    ///   into the handle's non-blocking [`EventSink`](ofscil_obs::EventSink)
    ///   (the hot path never waits on the collector; overflow is counted,
    ///   not blocked on),
    /// * the store maintenance thread emits a `Checkpoint` event whenever a
    ///   deployment's latest-checkpoint sequence number advances,
    /// * the `ObsQuery` wire request is answered from the handle's columnar
    ///   store. Without a handle that request gets a typed
    ///   [`InvalidRequest`](ofscil_serve::ServeError::InvalidRequest),
    /// * with **both** a store and an obs handle, the timeline is durable:
    ///   an [`ObsSpill`] log is opened inside the store root, any chunks and
    ///   rollups a previous incarnation spilled are rehydrated into the obs
    ///   store *before* serving starts, every chunk sealed while serving is
    ///   written through, and on graceful shutdown the sink is drained and
    ///   the active chunk sealed so the timeline's tail reaches disk too.
    ///   `ObsQuery` timelines therefore survive kill-and-recover.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] when binding or opening the spill log
    /// fails and [`WireError::Runtime`] when the serve configuration is
    /// invalid.
    pub fn run_observed<T, F>(
        registry: &LearnerRegistry,
        config: &WireConfig,
        store: Option<&Store>,
        obs: Option<&Obs>,
        body: F,
    ) -> Result<T, WireError>
    where
        F: FnOnce(&WireHandle) -> T,
    {
        let spill = match (store, obs) {
            (Some(store), Some(obs)) => {
                let (spill, recovery) =
                    ObsSpill::open(&store.root().join(SPILL_FILE)).map_err(|e| match e {
                        StoreError::Io(e) => WireError::Io(e),
                        other => WireError::Protocol(format!("obs spill: {other}")),
                    })?;
                recovery.rehydrate_into(obs.store());
                let spill = Arc::new(spill);
                obs.store().set_spill(Arc::clone(&spill) as Arc<dyn ofscil_obs::ChunkSpill>);
                Some(spill)
            }
            _ => None,
        };

        let (listener, addr) = WireListener::bind(&config.bind)?;
        listener.set_nonblocking(true)?;
        let (sink, commits) = mpsc::channel::<LearnCommit>();
        let shutdown = AtomicBool::new(false);
        let hub = ReplHub::new();

        let journal = store.map(|s| s as &dyn ofscil_serve::CommitJournal);
        let serve_obs = obs.map(|o| o.sink());
        let value = ServeRuntime::run_observed(registry, &config.serve, Some(sink), journal, serve_obs, |client| {
            std::thread::scope(|scope| {
                let hub = &hub;
                let shutdown = &shutdown;
                let options = ConnOptions {
                    max_payload: config.max_payload,
                    read_only: config.serve.read_only,
                };
                scope.spawn(move || hub_loop(hub, commits, shutdown));
                if let Some(store) = store {
                    scope.spawn(move || maintenance_loop(store, registry, obs, shutdown));
                }
                let accept_client = client.clone();
                scope.spawn(move || {
                    accept_loop(
                        scope, &listener, accept_client, registry, hub, store, obs, shutdown,
                        options,
                    );
                });

                let handle = WireHandle { addr: addr.clone() };
                let _shutdown_on_exit = ShutdownOnDrop::new(shutdown);
                body(&handle)
                // The guard raises the flag on return *and* on panic; the
                // scope then joins the accept loop, the hub, the maintenance
                // thread and every connection thread, all of which poll it
                // within `POLL`.
            })
        })
        .map_err(WireError::Runtime)?;

        if spill.is_some() {
            if let Some(obs) = obs {
                // Graceful shutdown: drain what the sink accepted and seal
                // the active chunk so the timeline's tail spills too. A
                // killed process skips this — that is exactly the torn tail
                // the spill log tolerates on the next open.
                obs.flush(Duration::from_secs(2));
                obs.store().seal();
            }
        }

        #[cfg(unix)]
        if let BoundAddr::Unix(path) = &addr {
            let _ = std::fs::remove_file(path);
        }
        Ok(value)
    }
}

/// Per-connection serving options the accept loop hands every connection.
#[derive(Clone, Copy)]
struct ConnOptions {
    max_payload: usize,
    read_only: bool,
}

/// Polls the store's maintenance sweep (delta compaction of WALs past the
/// compaction threshold) until shutdown — the "background" in background
/// delta compaction. The shutdown flag is polled every `POLL` so teardown
/// stays prompt, but the sweep itself runs an order of magnitude less often
/// (and the store skips logs with no appends since the last attempt).
/// Maintenance failures are tolerated: compaction is an optimization, and
/// the next sweep retries.
///
/// With an observability handle attached, each sweep also compares every
/// deployment's latest-checkpoint sequence number against the last sweep and
/// emits a `Checkpoint` event when it advanced. The first sweep seeds the
/// baseline silently, so checkpoints that predate the server do not appear
/// as fresh timeline events.
fn maintenance_loop(
    store: &Store,
    registry: &LearnerRegistry,
    obs: Option<&Obs>,
    shutdown: &AtomicBool,
) {
    let mut tick: u32 = 0;
    let mut checkpoint_seqs: HashMap<String, u64> = HashMap::new();
    let mut seeded = false;
    while !shutdown.load(Ordering::Acquire) {
        if tick % 16 == 0 {
            let _ = store.maintenance();
            if let Some(obs) = obs {
                observe_checkpoints(store, registry, obs, &mut checkpoint_seqs, seeded);
                seeded = true;
            }
        }
        tick = tick.wrapping_add(1);
        std::thread::sleep(POLL);
    }
}

/// One checkpoint-watch sweep: emits a `Checkpoint` event for every
/// deployment whose latest-checkpoint sequence number moved past the
/// recorded baseline (carrying the new sequence number and the current WAL
/// size), then advances the baseline. With `emit` false the sweep only
/// records baselines.
fn observe_checkpoints(
    store: &Store,
    registry: &LearnerRegistry,
    obs: &Obs,
    checkpoint_seqs: &mut HashMap<String, u64>,
    emit: bool,
) {
    use ofscil_serve::CommitJournal;
    for name in registry.names() {
        let Some(stats) = store.durability_stats(&name) else { continue };
        let seen = checkpoint_seqs.entry(name.clone()).or_insert(0);
        if emit && stats.last_checkpoint_seq > *seen {
            obs.sink().emit(
                Event::new(EventKind::Checkpoint, &name)
                    .with_seq(stats.last_checkpoint_seq)
                    .with_wal_bytes(stats.wal_bytes),
            );
        }
        *seen = stats.last_checkpoint_seq;
    }
}

/// Accepts connections until shutdown, spawning one scoped thread each.
#[allow(clippy::too_many_arguments)]
fn accept_loop<'scope, 'env>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    listener: &WireListener,
    client: ServeClient,
    registry: &'env LearnerRegistry,
    hub: &'scope ReplHub,
    store: Option<&'scope Store>,
    obs: Option<&'scope Obs>,
    shutdown: &'scope AtomicBool,
    options: ConnOptions,
) {
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok(stream) => {
                if stream.configure_for_server(POLL).is_err() {
                    continue;
                }
                let client = client.clone();
                scope.spawn(move || {
                    serve_connection(
                        stream, &client, registry, hub, store, obs, shutdown, options,
                    );
                });
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(2));
            }
            // Per-connection failures (a peer that reset before accept
            // completed, transient fd exhaustion, EINTR) must not kill the
            // listener: back off briefly and keep accepting. A genuinely
            // broken listener shows up as this loop erroring until shutdown,
            // which costs nothing.
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Serves one connection: a request/response loop that hands off to
/// replication streaming on `Subscribe`.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    mut stream: WireStream,
    client: &ServeClient,
    registry: &LearnerRegistry,
    hub: &ReplHub,
    store: Option<&Store>,
    obs: Option<&Obs>,
    shutdown: &AtomicBool,
    options: ConnOptions,
) {
    loop {
        let (kind, payload) = match read_frame(&mut stream, options.max_payload, Some(shutdown))
        {
            Ok(ReadEvent::Frame(kind, payload)) => (kind, payload),
            // Clean EOF, shutdown, or a frame-level error (the byte stream
            // can no longer be trusted): close the connection.
            Ok(ReadEvent::Eof | ReadEvent::Shutdown) | Err(_) => return,
        };
        let response = match decode_request(kind, &payload) {
            // The frame envelope was intact, so the stream is still
            // synchronized: answer with a typed error and keep serving.
            Err(e) => WireResponse::Error(ServeError::InvalidRequest(format!(
                "undecodable request: {e}"
            ))),
            Ok(WireRequest::Serve(request)) => match client.call(request) {
                Ok(response) => WireResponse::Serve(response),
                Err(error) => WireResponse::Error(error),
            },
            Ok(WireRequest::Subscribe { deployment }) => {
                stream_replication(stream, &deployment, registry, hub, store, shutdown);
                return;
            }
            // Migration endpoints are registry-direct (like Subscribe): they
            // move explicit-memory state between processes, not through the
            // request pipeline. Import is a write and respects replica mode.
            Ok(WireRequest::Export { deployment }) => {
                match registry.export_deployment(&deployment) {
                    Ok(export) => WireResponse::Export(export),
                    Err(error) => WireResponse::Error(error),
                }
            }
            Ok(WireRequest::Import(export)) => {
                if options.read_only {
                    WireResponse::Error(ServeError::ReadOnlyReplica {
                        deployment: export.name,
                    })
                } else {
                    // Journaled *inside* the import's model-lock window (the
                    // same discipline as learns), so the WAL cannot order a
                    // racing learn's record ahead of the import it ran
                    // after.
                    let journaled = registry.import_deployment_with(&export, |seq, spent, budget| {
                        journal_import(store, &export.name, seq, &export.snapshot, spent, budget)
                    });
                    match journaled {
                        Ok((classes, Ok(()))) => {
                            WireResponse::Imported { classes: classes as u64 }
                        }
                        // The in-memory import stands, but the caller must
                        // not believe it is durable — a router seeing this
                        // error keeps the old placement and can retry
                        // (imports never move seq backwards).
                        Ok((_, Err(e))) => WireResponse::Error(ServeError::Execution(format!(
                            "import applied but journaling failed: {e}"
                        ))),
                        Err(error) => WireResponse::Error(error),
                    }
                }
            }
            // Answered from the local columnar event store; a router fans
            // this request out to every shard instead (see `ofscil_router`).
            Ok(WireRequest::ObsQuery(query)) => match obs {
                Some(obs) => WireResponse::Obs(Box::new(obs.query(&query))),
                None => WireResponse::Error(ServeError::InvalidRequest(
                    "observability is not enabled on this server".into(),
                )),
            },
            // A live tail: the connection switches to streaming TailBatch
            // frames (back-fill first, then live), like Subscribe does for
            // replication.
            Ok(WireRequest::ObsSubscribe { query, cursor }) => match obs {
                Some(obs) => {
                    stream_obs_tail(stream, obs, query, cursor, shutdown);
                    return;
                }
                None => WireResponse::Error(ServeError::InvalidRequest(
                    "observability is not enabled on this server".into(),
                )),
            },
            // Follower advertisement is consumed by routers (which intercept
            // the frame before forwarding); reaching a plain shard means the
            // follower was pointed at the wrong address.
            Ok(WireRequest::AdvertiseFollower { .. }) => WireResponse::Error(
                ServeError::InvalidRequest(
                    "follower advertisement is a router operation".into(),
                ),
            ),
            // A one-shot anchor: the cheap checkpoint-served snapshot when a
            // store is attached, a live snapshot otherwise.
            Ok(WireRequest::ReAnchor { deployment }) => match anchor_for(
                &deployment, registry, store,
            ) {
                Ok((seq, snapshot)) => WireResponse::Repl(ReplEvent::Full { seq, snapshot }),
                Err(error) => WireResponse::Error(error),
            },
        };
        if stream.write_all(&encode_response(&response)).is_err() {
            return;
        }
    }
}

/// Journals a just-applied import into the store's WAL as a full-state
/// record, with the post-install sequence number and meter state. Called
/// while the import's model lock is still held (see the `Import` arm).
///
/// Serving without a store — or importing into a deployment that was never
/// attached to it — is not an error: such deployments simply are not
/// durable. A *failed* journal write on an attached deployment is: the
/// caller must surface it instead of acknowledging the import as durable.
fn journal_import(
    store: Option<&Store>,
    deployment: &str,
    seq: u64,
    snapshot: &[u8],
    spent_mj: f64,
    budget_mj: Option<f64>,
) -> Result<(), String> {
    let Some(store) = store else { return Ok(()) };
    match store.journal_import(deployment, seq, snapshot, spent_mj, budget_mj) {
        Ok(()) | Err(ofscil_store::StoreError::NotAttached(_)) => Ok(()),
        Err(e) => Err(e.to_string()),
    }
}

/// A full-snapshot anchor for one deployment: served from the store's latest
/// checkpoint plus the delta-compacted WAL tail when a store is attached
/// (bounded by live classes, never touches the model lock), from a live
/// snapshot otherwise.
fn anchor_for(
    deployment: &str,
    registry: &LearnerRegistry,
    store: Option<&Store>,
) -> Result<(u64, Vec<u8>), ServeError> {
    if let Some(store) = store {
        if let Ok(state) = store.replication_anchor(deployment) {
            return Ok((state.seq, state.snapshot));
        }
    }
    registry.snapshot_with_seq(deployment)
}

/// Bounded per-subscriber fan-out depth for wire tails. Past it the store
/// sheds rows (drop-and-count, surfaced as `SinkOverflow` markers) — the
/// append path never buffers for a stalled socket, the same discipline as
/// [`REPL_QUEUE_DEPTH`].
const TAIL_QUEUE_DEPTH: usize = 1024;

/// Maximum rows per streamed `TailBatch` frame.
const TAIL_BATCH_EVENTS: usize = 1024;

/// Streams a live observability tail to one subscriber: the cursor-ranged
/// back-fill first (bounded frames, oldest rows first, rollup cells for
/// GC'd spans riding with the first frame), then live batches until the
/// connection or the server ends.
///
/// The store registers the tail **atomically with the back-fill query**, so
/// back-fill and live feed partition the timeline exactly; every frame
/// carries the high-water resume cursor, so a reconnecting subscriber
/// resubscribes from the last frame it consumed and misses nothing.
fn stream_obs_tail(
    mut stream: WireStream,
    obs: &Obs,
    query: ObsQuery,
    cursor: Option<ObsCursor>,
    shutdown: &AtomicBool,
) {
    // Settle the sink first so rows it already accepted land in the
    // back-fill instead of racing the registration.
    obs.flush(Duration::from_millis(250));
    let tail = obs.store().subscribe(query, cursor, TAIL_QUEUE_DEPTH);

    // The final back-fill frame is sent even when empty, so the subscriber
    // always learns where "live" begins.
    let mut high_water = cursor.unwrap_or_default();
    let mut offset = 0usize;
    loop {
        let end = (offset + TAIL_BATCH_EVENTS).min(tail.backfill.events.len());
        let events = tail.backfill.events[offset..end].to_vec();
        for event in &events {
            high_water.advance(event.order_key());
        }
        let last = end == tail.backfill.events.len();
        let batch = TailBatch {
            events,
            rollups: if offset == 0 { tail.backfill.rollups.clone() } else { Vec::new() },
            cursor: high_water,
            backfill: true,
            truncated: tail.backfill.truncated,
            dropped: tail.dropped(),
        };
        if stream.write_all(&encode_response(&WireResponse::Tail(batch))).is_err() {
            return;
        }
        offset = end;
        if last {
            break;
        }
    }

    // Live: block briefly for the next row, drain greedily into one bounded
    // frame per wakeup.
    loop {
        let first = match tail.recv_timeout(POLL) {
            Ok(event) => event,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        let mut events = vec![first];
        while events.len() < TAIL_BATCH_EVENTS {
            match tail.try_next() {
                Some(event) => events.push(event),
                None => break,
            }
        }
        for event in &events {
            high_water.advance(event.order_key());
        }
        let batch = TailBatch {
            events,
            rollups: Vec::new(),
            cursor: high_water,
            backfill: false,
            truncated: false,
            dropped: tail.dropped(),
        };
        if stream.write_all(&encode_response(&WireResponse::Tail(batch))).is_err() {
            return;
        }
    }
}

/// Streams a deployment's snapshot stream to one subscriber: registration
/// first, then the full-snapshot anchor, then deltas until the connection or
/// the server ends.
///
/// With a store attached the anchor is served from the **latest checkpoint**
/// (plus the delta-compacted WAL tail) instead of a live snapshot — so a
/// far-behind subscriber re-anchoring itself never takes the deployment's
/// model lock, and its cost is bounded by live classes. Every journaled
/// commit is in the store *before* it reaches the hub (the journal write
/// happens under the model lock), so the checkpoint-served anchor can never
/// lag a delta the hub delivers: racing commits arrive with a sequence
/// number at or below the anchor (skipped by the follower) or exactly one
/// past it.
fn stream_replication(
    mut stream: WireStream,
    deployment: &str,
    registry: &LearnerRegistry,
    hub: &ReplHub,
    store: Option<&Store>,
    shutdown: &AtomicBool,
) {
    let deltas = hub.register(deployment);
    // Anchor *after* registering: a commit racing this anchor either made it
    // in (its delta arrives with seq <= anchor and is skipped) or not (its
    // delta arrives with the next seq and is applied). No gap is possible.
    let (seq, snapshot) = match anchor_for(deployment, registry, store) {
        Ok(anchor) => anchor,
        Err(error) => {
            let _ = stream.write_all(&encode_response(&WireResponse::Error(error)));
            return;
        }
    };
    let full = WireResponse::Repl(ReplEvent::Full { seq, snapshot });
    if stream.write_all(&encode_response(&full)).is_err() {
        return;
    }
    loop {
        match deltas.recv_timeout(POLL) {
            Ok(commit) => {
                let event = WireResponse::Repl(ReplEvent::Delta {
                    seq: commit.seq,
                    total_classes: commit.total_classes as u64,
                    updates: commit
                        .updates
                        .iter()
                        .map(|(class, prototype)| (*class as u64, prototype.clone()))
                        .collect(),
                });
                if stream.write_all(&encode_response(&event)).is_err() {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            // Outside shutdown, a disconnected queue means the hub dropped
            // this subscriber for lagging past the bounded queue depth. Say
            // so in a typed frame before closing, so the follower can tell
            // this recoverable condition apart from a real failure and
            // resubscribe for a fresh anchor.
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                if !shutdown.load(Ordering::Acquire) {
                    let lagged = WireResponse::Error(ServeError::ReplicationLagged {
                        deployment: deployment.to_string(),
                    });
                    let _ = stream.write_all(&encode_response(&lagged));
                }
                return;
            }
        }
    }
}
