//! Message bodies: the typed serve API and the replication stream on bytes.
//!
//! One frame carries one message; the frame's kind byte selects the decoder.
//! Scalars are little-endian, floats travel as their exact IEEE-754 bit
//! patterns (the same bit-exactness contract as the snapshot codec — a
//! prototype that crosses the wire classifies identically on both sides),
//! strings are length-prefixed UTF-8, and every variable-length field checks
//! its declared count against the remaining payload *before* allocating.
//!
//! ```text
//! kind   message
//! 0x01   Request  Infer        deployment, image tensor
//! 0x02   Request  LearnOnline  deployment, support batch
//! 0x03   Request  Snapshot     deployment
//! 0x04   Request  Stats        deployment
//! 0x05   Request  TopUpBudget  deployment, f64 mJ
//! 0x06   Request  Subscribe    deployment          (switches to streaming)
//! 0x07   Request  Export       deployment          (migration source)
//! 0x08   Request  Import       deployment, seq, snapshot (migration target)
//! 0x09   Request  ReAnchor     deployment          (checkpoint-served Full)
//! 0x0A   Request  ObsQuery     deployment, windows, kind mask, limit, resolution (scatter)
//! 0x0C   Request  ObsSubscribe obs query filter + optional resume cursor (streaming)
//! 0x41   Response Prediction   class, similarity, batched_with
//! 0x42   Response Learned      classes, total
//! 0x43   Response Snapshot     opaque snapshot-codec bytes
//! 0x44   Response Stats        full DeploymentStats
//! 0x45   Response Budget       spent, remaining
//! 0x46   Response Error        typed ServeError
//! 0x47   Response Export       seq, snapshot bytes
//! 0x48   Response Imported     restored class count
//! 0x49   Response Obs          events, aggregates, completeness counters, latency histogram
//! 0x61   Repl     Full         seq, snapshot bytes
//! 0x62   Repl     Delta        seq, total classes, (class, prototype) pairs
//! 0x63   Tail     Batch        flags, cursor, dropped, events, rollups
//! ```
//!
//! Every request payload leads with its deployment name, which is what lets
//! a router *peek* the routing key ([`peek_request`]) and forward the frame
//! bytes untouched instead of decoding image tensors it does not need.

use crate::error::PayloadError;
use crate::frame::frame_bytes;
use ofscil_data::Batch;
use ofscil_obs::{
    Event, EventKind, LatencyHistogram, ObsAggregates, ObsCursor, ObsQuery, ObsResult,
    Resolution, Rollup, Summary, TailBatch, LATENCY_BUCKETS,
};
use ofscil_serve::{
    DeploymentExport, DeploymentStats, ExportStats, ServeError, ServeRequest, ServeResponse,
};
use ofscil_tensor::Tensor;

// Message kind bytes. Requests live below 0x40, responses in 0x41..0x60,
// replication stream events in 0x61+.
const KIND_REQ_INFER: u8 = 0x01;
const KIND_REQ_LEARN: u8 = 0x02;
const KIND_REQ_SNAPSHOT: u8 = 0x03;
const KIND_REQ_STATS: u8 = 0x04;
const KIND_REQ_TOP_UP: u8 = 0x05;
const KIND_REQ_SUBSCRIBE: u8 = 0x06;
const KIND_REQ_EXPORT: u8 = 0x07;
const KIND_REQ_IMPORT: u8 = 0x08;
const KIND_REQ_REANCHOR: u8 = 0x09;
const KIND_REQ_OBS_QUERY: u8 = 0x0A;
const KIND_REQ_ADVERTISE: u8 = 0x0B;
const KIND_REQ_OBS_SUBSCRIBE: u8 = 0x0C;
const KIND_RESP_PREDICTION: u8 = 0x41;
const KIND_RESP_LEARNED: u8 = 0x42;
const KIND_RESP_SNAPSHOT: u8 = 0x43;
const KIND_RESP_STATS: u8 = 0x44;
const KIND_RESP_BUDGET: u8 = 0x45;
const KIND_RESP_ERROR: u8 = 0x46;
const KIND_RESP_EXPORT: u8 = 0x47;
const KIND_RESP_IMPORTED: u8 = 0x48;
const KIND_RESP_OBS: u8 = 0x49;
const KIND_RESP_ADVERTISED: u8 = 0x4A;
const KIND_REPL_FULL: u8 = 0x61;
const KIND_REPL_DELTA: u8 = 0x62;
const KIND_OBS_BATCH: u8 = 0x63;

/// A request as it travels over a wire connection.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// A serve-API request, dispatched into the remote runtime.
    Serve(ServeRequest),
    /// Subscribe to a deployment's replication stream. The server answers
    /// with one [`ReplEvent::Full`] and then streams [`ReplEvent::Delta`]s
    /// until the connection closes; no further requests are accepted on the
    /// connection.
    Subscribe {
        /// Deployment whose snapshot stream to tail.
        deployment: String,
    },
    /// Export a deployment's migratable state (snapshot + replication
    /// sequence number) — what a router reads off the source shard of a live
    /// migration. Answered with [`WireResponse::Export`].
    Export {
        /// Deployment to export.
        deployment: String,
    },
    /// Install an exported deployment state bit-exactly — what a router
    /// writes to the target shard of a live migration. Rejected with
    /// [`ServeError::ReadOnlyReplica`] on replicas. Answered with
    /// [`WireResponse::Imported`].
    Import(DeploymentExport),
    /// Fetch a fresh full-snapshot anchor for one deployment, served
    /// **straight from the store's latest checkpoint** when the server runs
    /// durably (no model lock, cost bounded by live classes) and from a live
    /// snapshot otherwise. Answered with a single [`ReplEvent::Full`] — the
    /// cheap way for a far-behind subscriber (or a backup job) to re-anchor
    /// without the expense of a full resubscribe.
    ReAnchor {
        /// Deployment whose anchor to fetch.
        deployment: String,
    },
    /// Scan the server's observability store: a range query over the event
    /// timeline by deployment, time window, sequence window and kind mask.
    /// Answered with [`WireResponse::Obs`]. The one request a router
    /// **scatter-gathers** to every shard (see [`RequestPeek::scatter`])
    /// instead of forwarding to a single owner — a migrated tenant's history
    /// lives on both its old and new shard.
    ObsQuery(ObsQuery),
    /// Register a **live tail** on the server's observability store. The
    /// server answers with the cursor-ranged back-fill as one or more
    /// [`WireResponse::Tail`] batches (`backfill` set), then streams live
    /// batches on the persistent connection until it closes — the streaming
    /// counterpart of [`WireRequest::ObsQuery`], same filter semantics.
    ObsSubscribe {
        /// Row filter: deployment, windows, kind mask, limit (bounds the
        /// back-fill), resolution (rollup cells for GC'd back-fill spans).
        query: ObsQuery,
        /// Resume position: back-fill delivers rows strictly after this.
        /// `None` back-fills from the beginning of retained history.
        cursor: Option<ObsCursor>,
    },
    /// A follower announcing itself to the cluster front door as a promotion
    /// candidate for the shard at `upstream`. Routers record the mapping in
    /// their follower registry (the control plane reads it to pick a
    /// `PromoteFollower` target); a plain shard answers with a typed error —
    /// advertisement is a router operation. Answered with
    /// [`WireResponse::Advertised`].
    AdvertiseFollower {
        /// Address of the primary the follower replicates (`host:port` or
        /// unix path) — the routing key, matched against the router's shard
        /// table.
        upstream: String,
        /// Address the follower itself listens on.
        follower: String,
    },
}

/// A response as it travels over a wire connection.
#[derive(Debug)]
pub enum WireResponse {
    /// A successful serve-API response.
    Serve(ServeResponse),
    /// The serve-side error of a failed request, typed end to end.
    Error(ServeError),
    /// One event of a replication stream.
    Repl(ReplEvent),
    /// Answer to [`WireRequest::Export`]: the deployment's migratable state.
    Export(DeploymentExport),
    /// Answer to [`WireRequest::Import`]: number of restored classes.
    Imported {
        /// Classes stored after the import.
        classes: u64,
    },
    /// Answer to [`WireRequest::ObsQuery`]: matching events plus aggregates
    /// and completeness counters, from one shard or merged across a cluster.
    /// Boxed: the result (histogram included) dwarfs every other variant.
    Obs(Box<ObsResult>),
    /// Answer to [`WireRequest::AdvertiseFollower`]: how many followers the
    /// router now has registered for the advertised upstream shard.
    Advertised {
        /// Followers registered for the shard after this advertisement.
        registered: u64,
    },
    /// One batch of a live tail stream (answering
    /// [`WireRequest::ObsSubscribe`]): back-fill first, then live rows,
    /// each batch carrying the resume cursor to reconnect from.
    Tail(TailBatch),
}

/// One event on a deployment's snapshot-replication stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplEvent {
    /// The stream anchor: a full explicit-memory snapshot (snapshot-codec
    /// bytes) that already contains every commit with sequence number
    /// `<= seq`.
    Full {
        /// Replication sequence number the snapshot was taken at.
        seq: u64,
        /// `ofscil_serve::snapshot` codec bytes.
        snapshot: Vec<u8>,
    },
    /// One committed `LearnOnline`: the post-commit prototypes of the classes
    /// the batch touched, to be stored verbatim via `restore_prototype`.
    Delta {
        /// Commit sequence number (consecutive per deployment).
        seq: u64,
        /// Total classes stored after the commit.
        total_classes: u64,
        /// `(class, stored prototype)` pairs, ascending by class.
        updates: Vec<(u64, Vec<f32>)>,
    },
}

// ---------------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn put_tensor(out: &mut Vec<u8>, tensor: &Tensor) {
    let dims = tensor.dims();
    out.push(dims.len() as u8);
    for &d in dims {
        put_u32(out, d as u32);
    }
    for &v in tensor.as_slice() {
        put_f32(out, v);
    }
}

fn put_option_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_f64(out, v);
        }
        None => out.push(0),
    }
}

// ---------------------------------------------------------------------------
// Primitive reader
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over one message payload. Every accessor returns
/// a typed [`PayloadError`]; nothing indexes past the end.
struct Reader<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, offset: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.offset
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PayloadError> {
        if self.remaining() < n {
            return Err(PayloadError::Truncated {
                offset: self.offset,
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.bytes[self.offset..self.offset + n];
        self.offset += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, PayloadError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PayloadError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    fn u64(&mut self) -> Result<u64, PayloadError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    fn f32(&mut self) -> Result<f32, PayloadError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f64(&mut self) -> Result<f64, PayloadError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize_field(&mut self, field: &'static str) -> Result<usize, PayloadError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| PayloadError::ValueOverflow { field, value: v })
    }

    /// Reads a declared element count and proves `count * element_size`
    /// bytes are actually present before the caller allocates.
    fn checked_count(
        &mut self,
        field: &'static str,
        element_size: usize,
    ) -> Result<usize, PayloadError> {
        let declared = u64::from(self.u32()?);
        let need = declared.saturating_mul(element_size as u64);
        if need > self.remaining() as u64 {
            return Err(PayloadError::LengthOverflow { field, declared });
        }
        Ok(declared as usize)
    }

    fn string(&mut self) -> Result<String, PayloadError> {
        let len = self.checked_count("string", 1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PayloadError::BadUtf8)
    }

    fn bytes_field(&mut self, field: &'static str) -> Result<Vec<u8>, PayloadError> {
        let len = self.checked_count(field, 1)?;
        Ok(self.take(len)?.to_vec())
    }

    fn tensor(&mut self) -> Result<Tensor, PayloadError> {
        let rank = usize::from(self.u8()?);
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(self.u32()? as usize);
        }
        // Element count in u64 so corrupt dimensions cannot overflow; the
        // per-element size check below bounds the allocation to the payload.
        let len = dims
            .iter()
            .try_fold(1u64, |acc, &d| acc.checked_mul(d as u64))
            .filter(|&v| v <= u64::from(u32::MAX));
        let Some(len) = len else {
            return Err(PayloadError::LengthOverflow { field: "tensor", declared: u64::MAX });
        };
        let need = len.saturating_mul(4);
        if need > self.remaining() as u64 {
            return Err(PayloadError::LengthOverflow { field: "tensor", declared: len });
        }
        let mut data = Vec::with_capacity(len as usize);
        for _ in 0..len {
            data.push(self.f32()?);
        }
        Tensor::from_vec(data, &dims).map_err(|e| PayloadError::BadTensor(e.to_string()))
    }

    fn option_f64(&mut self) -> Result<Option<f64>, PayloadError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            tag => Err(PayloadError::BadTag { field: "option<f64>", tag }),
        }
    }

    /// Asserts the payload is fully consumed.
    fn finish(self) -> Result<(), PayloadError> {
        if self.remaining() > 0 {
            return Err(PayloadError::TrailingBytes { remaining: self.remaining() });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Encodes a request into one complete frame.
pub fn encode_request(request: &WireRequest) -> Vec<u8> {
    let mut payload = Vec::new();
    let kind = match request {
        WireRequest::Serve(ServeRequest::Infer { deployment, image }) => {
            put_string(&mut payload, deployment);
            put_tensor(&mut payload, image);
            KIND_REQ_INFER
        }
        WireRequest::Serve(ServeRequest::LearnOnline { deployment, batch }) => {
            put_string(&mut payload, deployment);
            put_tensor(&mut payload, &batch.images);
            put_u32(&mut payload, batch.labels.len() as u32);
            for &label in &batch.labels {
                put_u64(&mut payload, label as u64);
            }
            KIND_REQ_LEARN
        }
        WireRequest::Serve(ServeRequest::Snapshot { deployment }) => {
            put_string(&mut payload, deployment);
            KIND_REQ_SNAPSHOT
        }
        WireRequest::Serve(ServeRequest::Stats { deployment }) => {
            put_string(&mut payload, deployment);
            KIND_REQ_STATS
        }
        WireRequest::Serve(ServeRequest::TopUpBudget { deployment, energy_mj }) => {
            put_string(&mut payload, deployment);
            put_f64(&mut payload, *energy_mj);
            KIND_REQ_TOP_UP
        }
        WireRequest::Subscribe { deployment } => {
            put_string(&mut payload, deployment);
            KIND_REQ_SUBSCRIBE
        }
        WireRequest::Export { deployment } => {
            put_string(&mut payload, deployment);
            KIND_REQ_EXPORT
        }
        WireRequest::Import(export) => {
            put_export(&mut payload, export);
            KIND_REQ_IMPORT
        }
        WireRequest::ReAnchor { deployment } => {
            put_string(&mut payload, deployment);
            KIND_REQ_REANCHOR
        }
        WireRequest::ObsQuery(query) => {
            put_obs_query(&mut payload, query);
            KIND_REQ_OBS_QUERY
        }
        WireRequest::ObsSubscribe { query, cursor } => {
            put_obs_query(&mut payload, query);
            match cursor {
                Some(cursor) => {
                    payload.push(1);
                    put_u64(&mut payload, cursor.time_us);
                    put_u64(&mut payload, cursor.seq);
                }
                None => payload.push(0),
            }
            KIND_REQ_OBS_SUBSCRIBE
        }
        WireRequest::AdvertiseFollower { upstream, follower } => {
            put_string(&mut payload, upstream);
            put_string(&mut payload, follower);
            KIND_REQ_ADVERTISE
        }
    };
    frame_bytes(kind, &payload)
}

// The obs-filter payload, shared by `ObsQuery` and `ObsSubscribe` requests:
// deployment-leading (so `peek_request` reads the routing key), then time and
// sequence windows, kind mask, row limit and resolution byte.
fn put_obs_query(out: &mut Vec<u8>, query: &ObsQuery) {
    put_string(out, &query.deployment);
    put_u64(out, query.time_min);
    put_u64(out, query.time_max);
    put_u64(out, query.seq_min);
    put_u64(out, query.seq_max);
    put_u32(out, u32::from(query.kinds));
    put_u32(out, query.limit);
    out.push(query.resolution.code());
}

fn read_obs_query(r: &mut Reader<'_>) -> Result<ObsQuery, PayloadError> {
    let deployment = r.string()?;
    let time_min = r.u64()?;
    let time_max = r.u64()?;
    let seq_min = r.u64()?;
    let seq_max = r.u64()?;
    let kinds = r.u32()?;
    let kinds = u16::try_from(kinds)
        .map_err(|_| PayloadError::ValueOverflow { field: "kinds", value: u64::from(kinds) })?;
    let limit = r.u32()?;
    let resolution_code = r.u8()?;
    let resolution = Resolution::from_code(resolution_code)
        .ok_or(PayloadError::BadTag { field: "obs resolution", tag: resolution_code })?;
    Ok(ObsQuery { deployment, time_min, time_max, seq_min, seq_max, kinds, limit, resolution })
}

// The migratable-deployment payload, shared by `Import` requests and `Export`
// responses: name + replication seq + snapshot bytes, then the billing state
// (spent/budget millijoules) and the lifetime request counters, so a live
// migration moves the meter and stats along with the model.
fn put_export(out: &mut Vec<u8>, export: &DeploymentExport) {
    put_string(out, &export.name);
    put_u64(out, export.seq);
    put_bytes(out, &export.snapshot);
    put_f64(out, export.spent_mj);
    put_option_f64(out, export.budget_mj);
    let stats = &export.stats;
    put_u64(out, stats.infer_requests);
    put_u64(out, stats.infer_batches);
    put_u64(out, stats.largest_batch);
    put_u64(out, stats.learn_requests);
    put_u64(out, stats.snapshots);
    put_u64(out, stats.rejected_infer);
    put_u64(out, stats.rejected_learn);
    put_u64(out, stats.deferred);
}

fn read_export(r: &mut Reader<'_>) -> Result<DeploymentExport, PayloadError> {
    Ok(DeploymentExport {
        name: r.string()?,
        seq: r.u64()?,
        snapshot: r.bytes_field("snapshot")?,
        spent_mj: r.f64()?,
        budget_mj: r.option_f64()?,
        stats: ExportStats {
            infer_requests: r.u64()?,
            infer_batches: r.u64()?,
            largest_batch: r.u64()?,
            learn_requests: r.u64()?,
            snapshots: r.u64()?,
            rejected_infer: r.u64()?,
            rejected_learn: r.u64()?,
            deferred: r.u64()?,
        },
    })
}

/// What [`peek_request`] saw in a request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestPeek {
    /// The deployment the request targets — the routing key.
    pub deployment: String,
    /// `true` for `Subscribe` and `ObsSubscribe`: the reply is an open-ended
    /// stream on the persistent connection, not a single response frame.
    pub streaming: bool,
    /// `true` for state-mutating requests (`LearnOnline`, `TopUpBudget`,
    /// `Import`). A forwarder must not replay these on a fresh connection
    /// after an ambiguous failure — the shard may have applied the request
    /// even though the response never arrived.
    pub write: bool,
    /// `true` for `ObsQuery`: the answer lives on *every* shard (a migrated
    /// deployment's history spans its old and new home), so a router must
    /// scatter the request to the whole cluster and merge the results rather
    /// than forward to the ring owner.
    pub scatter: bool,
    /// `true` for `AdvertiseFollower`: the request is addressed to the
    /// routing frontend itself (its "deployment" is the upstream shard
    /// address), so a router answers it from its follower registry instead
    /// of forwarding it anywhere.
    pub advertise: bool,
    /// `true` for `ObsSubscribe`: a streaming **and** scatter-shaped request
    /// — a router opens per-shard tails and merges them into one stream
    /// instead of forwarding to a single owner.
    pub obs_tail: bool,
}

/// Reads a request frame's routing key (the leading deployment string)
/// without decoding the rest of the payload, so a router can pick the owning
/// shard and forward the frame bytes verbatim — an `Infer` image tensor is
/// never deserialized on the routing hop.
///
/// # Errors
///
/// Returns a typed [`PayloadError`] for unknown request kinds and malformed
/// deployment strings; never panics.
pub fn peek_request(kind: u8, payload: &[u8]) -> Result<RequestPeek, PayloadError> {
    match kind {
        KIND_REQ_INFER | KIND_REQ_LEARN | KIND_REQ_SNAPSHOT | KIND_REQ_STATS
        | KIND_REQ_TOP_UP | KIND_REQ_SUBSCRIBE | KIND_REQ_EXPORT | KIND_REQ_IMPORT
        | KIND_REQ_REANCHOR | KIND_REQ_OBS_QUERY | KIND_REQ_ADVERTISE
        | KIND_REQ_OBS_SUBSCRIBE => {
            let mut r = Reader::new(payload);
            Ok(RequestPeek {
                deployment: r.string()?,
                streaming: matches!(kind, KIND_REQ_SUBSCRIBE | KIND_REQ_OBS_SUBSCRIBE),
                write: matches!(kind, KIND_REQ_LEARN | KIND_REQ_TOP_UP | KIND_REQ_IMPORT),
                scatter: kind == KIND_REQ_OBS_QUERY,
                advertise: kind == KIND_REQ_ADVERTISE,
                obs_tail: kind == KIND_REQ_OBS_SUBSCRIBE,
            })
        }
        other => Err(PayloadError::UnknownKind(other)),
    }
}

/// Decodes a request message from a frame's kind byte and payload.
///
/// # Errors
///
/// Returns a typed [`PayloadError`] for unknown kinds and malformed bodies;
/// never panics.
pub fn decode_request(kind: u8, payload: &[u8]) -> Result<WireRequest, PayloadError> {
    let mut r = Reader::new(payload);
    let request = match kind {
        KIND_REQ_INFER => WireRequest::Serve(ServeRequest::Infer {
            deployment: r.string()?,
            image: r.tensor()?,
        }),
        KIND_REQ_LEARN => {
            let deployment = r.string()?;
            let images = r.tensor()?;
            let count = r.checked_count("labels", 8)?;
            let mut labels = Vec::with_capacity(count);
            for _ in 0..count {
                labels.push(r.usize_field("label")?);
            }
            WireRequest::Serve(ServeRequest::LearnOnline {
                deployment,
                batch: Batch { images, labels },
            })
        }
        KIND_REQ_SNAPSHOT => {
            WireRequest::Serve(ServeRequest::Snapshot { deployment: r.string()? })
        }
        KIND_REQ_STATS => WireRequest::Serve(ServeRequest::Stats { deployment: r.string()? }),
        KIND_REQ_TOP_UP => WireRequest::Serve(ServeRequest::TopUpBudget {
            deployment: r.string()?,
            energy_mj: r.f64()?,
        }),
        KIND_REQ_SUBSCRIBE => WireRequest::Subscribe { deployment: r.string()? },
        KIND_REQ_EXPORT => WireRequest::Export { deployment: r.string()? },
        KIND_REQ_IMPORT => WireRequest::Import(read_export(&mut r)?),
        KIND_REQ_REANCHOR => WireRequest::ReAnchor { deployment: r.string()? },
        KIND_REQ_OBS_QUERY => WireRequest::ObsQuery(read_obs_query(&mut r)?),
        KIND_REQ_OBS_SUBSCRIBE => {
            let query = read_obs_query(&mut r)?;
            let cursor = match r.u8()? {
                0 => None,
                1 => Some(ObsCursor { time_us: r.u64()?, seq: r.u64()? }),
                tag => return Err(PayloadError::BadTag { field: "obs cursor", tag }),
            };
            WireRequest::ObsSubscribe { query, cursor }
        }
        KIND_REQ_ADVERTISE => WireRequest::AdvertiseFollower {
            upstream: r.string()?,
            follower: r.string()?,
        },
        other => return Err(PayloadError::UnknownKind(other)),
    };
    r.finish()?;
    Ok(request)
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

// ServeError wire tags. Wrapped library errors (snapshot codec, model, device
// pricing, tensor) are folded into `Execution` with their display string —
// the variants a client acts on programmatically survive structurally.
const ERR_UNKNOWN_DEPLOYMENT: u8 = 0;
const ERR_DUPLICATE_DEPLOYMENT: u8 = 1;
const ERR_BUDGET_EXHAUSTED: u8 = 2;
const ERR_INVALID_REQUEST: u8 = 3;
const ERR_INVALID_CONFIG: u8 = 4;
const ERR_EXECUTION: u8 = 5;
const ERR_SHUTTING_DOWN: u8 = 6;
const ERR_QUEUE_FULL: u8 = 7;
const ERR_READ_ONLY_REPLICA: u8 = 8;
const ERR_SHARD_UNAVAILABLE: u8 = 9;
const ERR_REPLICATION_LAGGED: u8 = 10;

fn put_serve_error(out: &mut Vec<u8>, error: &ServeError) {
    match error {
        ServeError::UnknownDeployment(name) => {
            out.push(ERR_UNKNOWN_DEPLOYMENT);
            put_string(out, name);
        }
        ServeError::DuplicateDeployment(name) => {
            out.push(ERR_DUPLICATE_DEPLOYMENT);
            put_string(out, name);
        }
        ServeError::BudgetExhausted { deployment, required_mj, remaining_mj } => {
            out.push(ERR_BUDGET_EXHAUSTED);
            put_string(out, deployment);
            put_f64(out, *required_mj);
            put_f64(out, *remaining_mj);
        }
        ServeError::InvalidRequest(msg) => {
            out.push(ERR_INVALID_REQUEST);
            put_string(out, msg);
        }
        ServeError::InvalidConfig(msg) => {
            out.push(ERR_INVALID_CONFIG);
            put_string(out, msg);
        }
        ServeError::Execution(msg) => {
            out.push(ERR_EXECUTION);
            put_string(out, msg);
        }
        ServeError::ShuttingDown => out.push(ERR_SHUTTING_DOWN),
        ServeError::QueueFull { depth } => {
            out.push(ERR_QUEUE_FULL);
            put_u64(out, *depth as u64);
        }
        ServeError::ReadOnlyReplica { deployment } => {
            out.push(ERR_READ_ONLY_REPLICA);
            put_string(out, deployment);
        }
        ServeError::ShardUnavailable { shard, detail } => {
            out.push(ERR_SHARD_UNAVAILABLE);
            put_string(out, shard);
            put_string(out, detail);
        }
        ServeError::ReplicationLagged { deployment } => {
            out.push(ERR_REPLICATION_LAGGED);
            put_string(out, deployment);
        }
        // Library-wrapped errors cross the wire as their display form.
        other => {
            out.push(ERR_EXECUTION);
            put_string(out, &other.to_string());
        }
    }
}

fn read_serve_error(r: &mut Reader<'_>) -> Result<ServeError, PayloadError> {
    Ok(match r.u8()? {
        ERR_UNKNOWN_DEPLOYMENT => ServeError::UnknownDeployment(r.string()?),
        ERR_DUPLICATE_DEPLOYMENT => ServeError::DuplicateDeployment(r.string()?),
        ERR_BUDGET_EXHAUSTED => ServeError::BudgetExhausted {
            deployment: r.string()?,
            required_mj: r.f64()?,
            remaining_mj: r.f64()?,
        },
        ERR_INVALID_REQUEST => ServeError::InvalidRequest(r.string()?),
        ERR_INVALID_CONFIG => ServeError::InvalidConfig(r.string()?),
        ERR_EXECUTION => ServeError::Execution(r.string()?),
        ERR_SHUTTING_DOWN => ServeError::ShuttingDown,
        ERR_QUEUE_FULL => ServeError::QueueFull { depth: r.usize_field("depth")? },
        ERR_READ_ONLY_REPLICA => ServeError::ReadOnlyReplica { deployment: r.string()? },
        ERR_SHARD_UNAVAILABLE => ServeError::ShardUnavailable {
            shard: r.string()?,
            detail: r.string()?,
        },
        ERR_REPLICATION_LAGGED => ServeError::ReplicationLagged { deployment: r.string()? },
        tag => return Err(PayloadError::BadTag { field: "serve error", tag }),
    })
}

fn put_stats(out: &mut Vec<u8>, stats: &DeploymentStats) {
    put_string(out, &stats.name);
    put_u64(out, stats.classes as u64);
    put_u64(out, stats.infer_requests);
    put_u64(out, stats.infer_batches);
    put_u64(out, stats.largest_batch as u64);
    put_u64(out, stats.learn_requests);
    put_u64(out, stats.snapshots);
    put_u64(out, stats.rejected_infer);
    put_u64(out, stats.rejected_learn);
    put_u64(out, stats.deferred);
    put_f64(out, stats.energy_spent_mj);
    put_option_f64(out, stats.energy_budget_mj);
    match &stats.durability {
        Some(d) => {
            out.push(1);
            put_u64(out, d.wal_records);
            put_u64(out, d.wal_bytes);
            put_u64(out, d.compactions);
            put_u64(out, d.last_checkpoint_seq);
        }
        None => out.push(0),
    }
}

fn read_stats(r: &mut Reader<'_>) -> Result<DeploymentStats, PayloadError> {
    Ok(DeploymentStats {
        name: r.string()?,
        classes: r.usize_field("classes")?,
        infer_requests: r.u64()?,
        infer_batches: r.u64()?,
        largest_batch: r.usize_field("largest_batch")?,
        learn_requests: r.u64()?,
        snapshots: r.u64()?,
        rejected_infer: r.u64()?,
        rejected_learn: r.u64()?,
        deferred: r.u64()?,
        energy_spent_mj: r.f64()?,
        energy_budget_mj: r.option_f64()?,
        durability: match r.u8()? {
            0 => None,
            1 => Some(ofscil_serve::DurabilityStats {
                wal_records: r.u64()?,
                wal_bytes: r.u64()?,
                compactions: r.u64()?,
                last_checkpoint_seq: r.u64()?,
            }),
            tag => return Err(PayloadError::BadTag { field: "durability", tag }),
        },
    })
}

// Minimum encoded size of one obs event: deployment length prefix (4) +
// kind (1) + seq/time/latency/wal (4×8) + energy (8) + accuracy (4).
const OBS_EVENT_MIN_BYTES: usize = 49;

// Minimum encoded size of one rollup cell: bucket (8) + deployment length
// prefix (4) + kind (1) + count (8) + three 32-byte summaries.
const OBS_ROLLUP_MIN_BYTES: usize = 117;

fn put_rollup(out: &mut Vec<u8>, rollup: &Rollup) {
    put_u64(out, rollup.bucket_us);
    put_string(out, &rollup.deployment);
    out.push(rollup.kind.code());
    put_u64(out, rollup.count);
    put_summary(out, &rollup.energy_mj);
    put_summary(out, &rollup.latency_us);
    put_summary(out, &rollup.accuracy);
}

fn read_rollup(r: &mut Reader<'_>) -> Result<Rollup, PayloadError> {
    let bucket_us = r.u64()?;
    let deployment = r.string()?;
    let kind_code = r.u8()?;
    let kind = EventKind::from_code(kind_code)
        .ok_or(PayloadError::BadTag { field: "obs rollup kind", tag: kind_code })?;
    Ok(Rollup {
        bucket_us,
        deployment,
        kind,
        count: r.u64()?,
        energy_mj: read_summary(r)?,
        latency_us: read_summary(r)?,
        accuracy: read_summary(r)?,
    })
}

fn put_obs_event(out: &mut Vec<u8>, event: &Event) {
    put_string(out, &event.deployment);
    out.push(event.kind.code());
    put_u64(out, event.seq);
    put_u64(out, event.time_us);
    put_f64(out, event.energy_mj);
    put_u64(out, event.latency_us);
    put_f32(out, event.accuracy);
    put_u64(out, event.wal_bytes);
}

fn read_obs_event(r: &mut Reader<'_>) -> Result<Event, PayloadError> {
    let deployment = r.string()?;
    let kind_code = r.u8()?;
    let kind = EventKind::from_code(kind_code)
        .ok_or(PayloadError::BadTag { field: "obs event kind", tag: kind_code })?;
    Ok(Event {
        deployment,
        kind,
        seq: r.u64()?,
        time_us: r.u64()?,
        energy_mj: r.f64()?,
        latency_us: r.u64()?,
        accuracy: r.f32()?,
        wal_bytes: r.u64()?,
    })
}

fn put_summary(out: &mut Vec<u8>, summary: &Summary) {
    put_f64(out, summary.min);
    put_f64(out, summary.max);
    put_f64(out, summary.sum);
    put_u64(out, summary.count);
}

fn read_summary(r: &mut Reader<'_>) -> Result<Summary, PayloadError> {
    Ok(Summary { min: r.f64()?, max: r.f64()?, sum: r.f64()?, count: r.u64()? })
}

/// Encodes a response into one complete frame.
pub fn encode_response(response: &WireResponse) -> Vec<u8> {
    let mut payload = Vec::new();
    let kind = match response {
        WireResponse::Serve(ServeResponse::Prediction { class, similarity, batched_with }) => {
            put_u64(&mut payload, *class as u64);
            put_f32(&mut payload, *similarity);
            put_u64(&mut payload, *batched_with as u64);
            KIND_RESP_PREDICTION
        }
        WireResponse::Serve(ServeResponse::Learned { classes, total_classes }) => {
            put_u32(&mut payload, classes.len() as u32);
            for &class in classes {
                put_u64(&mut payload, class as u64);
            }
            put_u64(&mut payload, *total_classes as u64);
            KIND_RESP_LEARNED
        }
        WireResponse::Serve(ServeResponse::Snapshot { bytes }) => {
            put_bytes(&mut payload, bytes);
            KIND_RESP_SNAPSHOT
        }
        WireResponse::Serve(ServeResponse::Stats(stats)) => {
            put_stats(&mut payload, stats);
            KIND_RESP_STATS
        }
        WireResponse::Serve(ServeResponse::Budget { spent_mj, remaining_mj }) => {
            put_f64(&mut payload, *spent_mj);
            put_option_f64(&mut payload, *remaining_mj);
            KIND_RESP_BUDGET
        }
        WireResponse::Error(error) => {
            put_serve_error(&mut payload, error);
            KIND_RESP_ERROR
        }
        WireResponse::Repl(ReplEvent::Full { seq, snapshot }) => {
            put_u64(&mut payload, *seq);
            put_bytes(&mut payload, snapshot);
            KIND_REPL_FULL
        }
        WireResponse::Repl(ReplEvent::Delta { seq, total_classes, updates }) => {
            put_u64(&mut payload, *seq);
            put_u64(&mut payload, *total_classes);
            put_u32(&mut payload, updates.len() as u32);
            for (class, prototype) in updates {
                put_u64(&mut payload, *class);
                put_u32(&mut payload, prototype.len() as u32);
                for &v in prototype {
                    put_f32(&mut payload, v);
                }
            }
            KIND_REPL_DELTA
        }
        WireResponse::Export(export) => {
            put_export(&mut payload, export);
            KIND_RESP_EXPORT
        }
        WireResponse::Imported { classes } => {
            put_u64(&mut payload, *classes);
            KIND_RESP_IMPORTED
        }
        WireResponse::Advertised { registered } => {
            put_u64(&mut payload, *registered);
            KIND_RESP_ADVERTISED
        }
        WireResponse::Obs(result) => {
            put_u32(&mut payload, result.events.len() as u32);
            for event in &result.events {
                put_obs_event(&mut payload, event);
            }
            put_u64(&mut payload, result.aggregates.matched);
            put_summary(&mut payload, &result.aggregates.energy_mj);
            put_summary(&mut payload, &result.aggregates.latency_us);
            put_summary(&mut payload, &result.aggregates.accuracy);
            payload.push(u8::from(result.truncated));
            put_u64(&mut payload, result.appended);
            put_u64(&mut payload, result.dropped);
            put_u32(&mut payload, result.shards_ok);
            put_u32(&mut payload, result.shards_err);
            put_u32(&mut payload, result.rollups.len() as u32);
            for rollup in &result.rollups {
                put_rollup(&mut payload, rollup);
            }
            for &count in &result.latency_hist.counts {
                put_u64(&mut payload, count);
            }
            KIND_RESP_OBS
        }
        WireResponse::Tail(batch) => {
            let mut flags = 0u8;
            if batch.backfill {
                flags |= 1;
            }
            if batch.truncated {
                flags |= 2;
            }
            payload.push(flags);
            put_u64(&mut payload, batch.cursor.time_us);
            put_u64(&mut payload, batch.cursor.seq);
            put_u64(&mut payload, batch.dropped);
            put_u32(&mut payload, batch.events.len() as u32);
            for event in &batch.events {
                put_obs_event(&mut payload, event);
            }
            put_u32(&mut payload, batch.rollups.len() as u32);
            for rollup in &batch.rollups {
                put_rollup(&mut payload, rollup);
            }
            KIND_OBS_BATCH
        }
    };
    frame_bytes(kind, &payload)
}

/// Decodes a response message from a frame's kind byte and payload.
///
/// # Errors
///
/// Returns a typed [`PayloadError`] for unknown kinds and malformed bodies;
/// never panics.
pub fn decode_response(kind: u8, payload: &[u8]) -> Result<WireResponse, PayloadError> {
    let mut r = Reader::new(payload);
    let response = match kind {
        KIND_RESP_PREDICTION => WireResponse::Serve(ServeResponse::Prediction {
            class: r.usize_field("class")?,
            similarity: r.f32()?,
            batched_with: r.usize_field("batched_with")?,
        }),
        KIND_RESP_LEARNED => {
            let count = r.checked_count("classes", 8)?;
            let mut classes = Vec::with_capacity(count);
            for _ in 0..count {
                classes.push(r.usize_field("class")?);
            }
            WireResponse::Serve(ServeResponse::Learned {
                classes,
                total_classes: r.usize_field("total_classes")?,
            })
        }
        KIND_RESP_SNAPSHOT => WireResponse::Serve(ServeResponse::Snapshot {
            bytes: r.bytes_field("snapshot")?,
        }),
        KIND_RESP_STATS => WireResponse::Serve(ServeResponse::Stats(read_stats(&mut r)?)),
        KIND_RESP_BUDGET => WireResponse::Serve(ServeResponse::Budget {
            spent_mj: r.f64()?,
            remaining_mj: r.option_f64()?,
        }),
        KIND_RESP_ERROR => WireResponse::Error(read_serve_error(&mut r)?),
        KIND_REPL_FULL => WireResponse::Repl(ReplEvent::Full {
            seq: r.u64()?,
            snapshot: r.bytes_field("snapshot")?,
        }),
        KIND_REPL_DELTA => {
            let seq = r.u64()?;
            let total_classes = r.u64()?;
            let count = r.checked_count("updates", 12)?;
            let mut updates = Vec::with_capacity(count);
            for _ in 0..count {
                let class = r.u64()?;
                let dim = r.checked_count("prototype", 4)?;
                let mut prototype = Vec::with_capacity(dim);
                for _ in 0..dim {
                    prototype.push(r.f32()?);
                }
                updates.push((class, prototype));
            }
            WireResponse::Repl(ReplEvent::Delta { seq, total_classes, updates })
        }
        KIND_RESP_EXPORT => WireResponse::Export(read_export(&mut r)?),
        KIND_RESP_IMPORTED => WireResponse::Imported { classes: r.u64()? },
        KIND_RESP_ADVERTISED => WireResponse::Advertised { registered: r.u64()? },
        KIND_RESP_OBS => {
            let count = r.checked_count("obs events", OBS_EVENT_MIN_BYTES)?;
            let mut events = Vec::with_capacity(count);
            for _ in 0..count {
                events.push(read_obs_event(&mut r)?);
            }
            let aggregates = ObsAggregates {
                matched: r.u64()?,
                energy_mj: read_summary(&mut r)?,
                latency_us: read_summary(&mut r)?,
                accuracy: read_summary(&mut r)?,
            };
            let truncated = match r.u8()? {
                0 => false,
                1 => true,
                tag => return Err(PayloadError::BadTag { field: "truncated", tag }),
            };
            let appended = r.u64()?;
            let dropped = r.u64()?;
            let shards_ok = r.u32()?;
            let shards_err = r.u32()?;
            let rollup_count = r.checked_count("obs rollups", OBS_ROLLUP_MIN_BYTES)?;
            let mut rollups = Vec::with_capacity(rollup_count);
            for _ in 0..rollup_count {
                rollups.push(read_rollup(&mut r)?);
            }
            let mut latency_hist = LatencyHistogram::empty();
            for count in latency_hist.counts.iter_mut() {
                *count = r.u64()?;
            }
            debug_assert_eq!(latency_hist.counts.len(), LATENCY_BUCKETS);
            WireResponse::Obs(Box::new(ObsResult {
                events,
                rollups,
                aggregates,
                truncated,
                appended,
                dropped,
                shards_ok,
                shards_err,
                latency_hist,
            }))
        }
        KIND_OBS_BATCH => {
            let flags = r.u8()?;
            if flags & !3 != 0 {
                return Err(PayloadError::BadTag { field: "tail flags", tag: flags });
            }
            let cursor = ObsCursor { time_us: r.u64()?, seq: r.u64()? };
            let dropped = r.u64()?;
            let count = r.checked_count("tail events", OBS_EVENT_MIN_BYTES)?;
            let mut events = Vec::with_capacity(count);
            for _ in 0..count {
                events.push(read_obs_event(&mut r)?);
            }
            let rollup_count = r.checked_count("tail rollups", OBS_ROLLUP_MIN_BYTES)?;
            let mut rollups = Vec::with_capacity(rollup_count);
            for _ in 0..rollup_count {
                rollups.push(read_rollup(&mut r)?);
            }
            WireResponse::Tail(TailBatch {
                events,
                rollups,
                cursor,
                backfill: flags & 1 != 0,
                truncated: flags & 2 != 0,
                dropped,
            })
        }
        other => return Err(PayloadError::UnknownKind(other)),
    };
    r.finish()?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{parse_frame, DEFAULT_MAX_PAYLOAD};

    fn roundtrip_request(request: WireRequest) {
        let frame = encode_request(&request);
        let (kind, payload) = parse_frame(&frame, DEFAULT_MAX_PAYLOAD).unwrap();
        let back = decode_request(kind, payload).unwrap();
        assert_eq!(back, request);
    }

    fn roundtrip_response(response: &WireResponse) -> WireResponse {
        let frame = encode_response(response);
        let (kind, payload) = parse_frame(&frame, DEFAULT_MAX_PAYLOAD).unwrap();
        decode_response(kind, payload).unwrap()
    }

    #[test]
    fn every_request_variant_roundtrips() {
        roundtrip_request(WireRequest::Serve(ServeRequest::Infer {
            deployment: "tenant-α".into(),
            image: Tensor::from_vec(vec![0.25, -1.5, f32::MIN_POSITIVE, 3.0e7], &[1, 2, 2])
                .unwrap(),
        }));
        roundtrip_request(WireRequest::Serve(ServeRequest::LearnOnline {
            deployment: "t".into(),
            batch: Batch {
                images: Tensor::from_vec((0..24).map(|i| i as f32 * 0.5).collect(), &[2, 3, 2, 2])
                    .unwrap(),
                labels: vec![7, 3],
            },
        }));
        roundtrip_request(WireRequest::Serve(ServeRequest::Snapshot { deployment: "s".into() }));
        roundtrip_request(WireRequest::Serve(ServeRequest::Stats { deployment: "".into() }));
        roundtrip_request(WireRequest::Serve(ServeRequest::TopUpBudget {
            deployment: "t".into(),
            energy_mj: 12.75,
        }));
        roundtrip_request(WireRequest::Subscribe { deployment: "repl".into() });
        roundtrip_request(WireRequest::Export { deployment: "mover".into() });
        roundtrip_request(WireRequest::Import(DeploymentExport {
            name: "mover".into(),
            seq: 17,
            snapshot: vec![0xde, 0xad, 0xbe, 0xef],
            spent_mj: 3.625,
            budget_mj: Some(80.0),
            stats: ExportStats {
                infer_requests: 100,
                infer_batches: 25,
                largest_batch: 8,
                learn_requests: 3,
                snapshots: 1,
                rejected_infer: 2,
                rejected_learn: 1,
                deferred: 4,
            },
        }));
        roundtrip_request(WireRequest::ReAnchor { deployment: "lagging".into() });
        roundtrip_request(WireRequest::ObsQuery(
            ObsQuery::deployment("tenant-a")
                .with_time_range(1_000, 2_000)
                .with_seq_range(5, 50)
                .with_kinds(&[EventKind::Infer, EventKind::Migration])
                .with_limit(128)
                .with_resolution(Resolution::Auto),
        ));
        roundtrip_request(WireRequest::ObsQuery(
            ObsQuery::all().with_resolution(Resolution::Rollup),
        ));
        roundtrip_request(WireRequest::ObsQuery(ObsQuery::all()));
        roundtrip_request(WireRequest::ObsSubscribe {
            query: ObsQuery::all(),
            cursor: None,
        });
        roundtrip_request(WireRequest::ObsSubscribe {
            query: ObsQuery::deployment("tenant-a")
                .with_kinds(&[EventKind::Infer, EventKind::SinkOverflow])
                .with_limit(4096),
            cursor: Some(ObsCursor { time_us: 123_456_789, seq: 42 }),
        });
        roundtrip_request(WireRequest::AdvertiseFollower {
            upstream: "127.0.0.1:9001".into(),
            follower: "127.0.0.1:9101".into(),
        });
    }

    #[test]
    fn peek_reads_the_routing_key_of_every_request_kind() {
        // (request, streaming, write, scatter)
        let requests = [
            (
                WireRequest::Serve(ServeRequest::Infer {
                    deployment: "tenant-a".into(),
                    image: Tensor::zeros(&[1, 2, 2]),
                }),
                false,
                false,
                false,
            ),
            (
                WireRequest::Serve(ServeRequest::LearnOnline {
                    deployment: "tenant-a".into(),
                    batch: Batch { images: Tensor::zeros(&[1, 3, 2, 2]), labels: vec![0] },
                }),
                false,
                true,
                false,
            ),
            (
                WireRequest::Serve(ServeRequest::Snapshot { deployment: "tenant-a".into() }),
                false,
                false,
                false,
            ),
            (
                WireRequest::Serve(ServeRequest::Stats { deployment: "tenant-a".into() }),
                false,
                false,
                false,
            ),
            (
                WireRequest::Serve(ServeRequest::TopUpBudget {
                    deployment: "tenant-a".into(),
                    energy_mj: 1.0,
                }),
                false,
                true,
                false,
            ),
            (WireRequest::Subscribe { deployment: "tenant-a".into() }, true, false, false),
            (WireRequest::Export { deployment: "tenant-a".into() }, false, false, false),
            (
                WireRequest::Import(DeploymentExport {
                    name: "tenant-a".into(),
                    seq: 3,
                    snapshot: vec![1, 2],
                    ..DeploymentExport::default()
                }),
                false,
                true,
                false,
            ),
            (WireRequest::ReAnchor { deployment: "tenant-a".into() }, false, false, false),
            (WireRequest::ObsQuery(ObsQuery::deployment("tenant-a")), false, false, true),
            // A tail subscription streams but is NOT a scatter one-shot: the
            // router multiplexes it itself (peek.obs_tail, asserted below).
            (
                WireRequest::ObsSubscribe {
                    query: ObsQuery::deployment("tenant-a"),
                    cursor: Some(ObsCursor { time_us: 9, seq: 1 }),
                },
                true,
                false,
                false,
            ),
            // The advertisement's routing key is the *upstream* shard address
            // — the string a router matches against its shard table.
            (
                WireRequest::AdvertiseFollower {
                    upstream: "tenant-a".into(),
                    follower: "127.0.0.1:9101".into(),
                },
                false,
                false,
                false,
            ),
        ];
        for (request, streaming, write, scatter) in requests {
            let frame = encode_request(&request);
            let (kind, payload) = parse_frame(&frame, DEFAULT_MAX_PAYLOAD).unwrap();
            let peek = peek_request(kind, payload).unwrap();
            assert_eq!(peek.deployment, "tenant-a", "for {request:?}");
            assert_eq!(peek.streaming, streaming, "for {request:?}");
            assert_eq!(peek.write, write, "for {request:?}");
            assert_eq!(peek.scatter, scatter, "for {request:?}");
            assert_eq!(
                peek.advertise,
                matches!(request, WireRequest::AdvertiseFollower { .. }),
                "for {request:?}"
            );
            assert_eq!(
                peek.obs_tail,
                matches!(request, WireRequest::ObsSubscribe { .. }),
                "for {request:?}"
            );
        }
        // A response kind is not peekable, and a truncated deployment string
        // is a typed error.
        assert!(matches!(
            peek_request(KIND_RESP_ERROR, &[]),
            Err(PayloadError::UnknownKind(_))
        ));
        let mut payload = Vec::new();
        put_u32(&mut payload, 99);
        assert!(matches!(
            peek_request(KIND_REQ_STATS, &payload),
            Err(PayloadError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn every_response_variant_roundtrips() {
        for response in [
            WireResponse::Serve(ServeResponse::Prediction {
                class: 42,
                similarity: 0.875,
                batched_with: 8,
            }),
            WireResponse::Serve(ServeResponse::Learned {
                classes: vec![0, 5, 9],
                total_classes: 12,
            }),
            WireResponse::Serve(ServeResponse::Snapshot { bytes: vec![1, 2, 3, 255] }),
            WireResponse::Serve(ServeResponse::Budget { spent_mj: 3.5, remaining_mj: None }),
            WireResponse::Serve(ServeResponse::Budget {
                spent_mj: 0.0,
                remaining_mj: Some(9.25),
            }),
            WireResponse::Repl(ReplEvent::Full { seq: 7, snapshot: vec![9; 20] }),
            WireResponse::Repl(ReplEvent::Delta {
                seq: 8,
                total_classes: 3,
                updates: vec![(0, vec![1.0, -2.0]), (2, vec![0.5, 0.25])],
            }),
            WireResponse::Export(DeploymentExport {
                name: "mover".into(),
                seq: 5,
                snapshot: vec![7; 12],
                spent_mj: 12.25,
                budget_mj: None,
                stats: ExportStats { infer_requests: 9, deferred: 1, ..ExportStats::default() },
            }),
            WireResponse::Imported { classes: 4 },
            WireResponse::Advertised { registered: 2 },
            WireResponse::Obs(Box::default()),
            WireResponse::Obs(Box::new({
                let mut result = ObsResult {
                    truncated: true,
                    appended: 12,
                    dropped: 2,
                    shards_ok: 3,
                    shards_err: 1,
                    ..ObsResult::default()
                };
                result.events = vec![
                    Event::new(EventKind::Infer, "tenant-a")
                        .with_seq(4)
                        .with_time_us(1_000)
                        .with_energy_mj(0.5)
                        .with_latency_us(120)
                        .with_accuracy(0.875),
                    // NaN accuracy must cross bit-faithfully (Debug prints
                    // NaN identically on both sides).
                    Event::new(EventKind::Migration, "tenant-a")
                        .with_seq(5)
                        .with_time_us(2_000)
                        .with_wal_bytes(4096),
                ];
                for i in 0..result.events.len() {
                    let event = result.events[i].clone();
                    result.aggregates.observe(&event);
                }
                // Rollup cells cross too, NaN-free and NaN-bearing alike.
                let mut cell = Rollup::new(60_000_000, "tenant-a", EventKind::Infer);
                cell.observe(&result.events[0]);
                let mut nan_cell = Rollup::new(0, "tenant-a", EventKind::Migration);
                nan_cell.observe(&result.events[1]);
                result.rollups = vec![nan_cell, cell];
                // The latency histogram crosses bucket-for-bucket.
                result.latency_hist.record(120);
                result.latency_hist.record(0);
                result.latency_hist.record(u64::MAX);
                result
            })),
            WireResponse::Tail(TailBatch::default()),
            WireResponse::Tail(TailBatch {
                events: vec![
                    Event::new(EventKind::Infer, "tenant-a")
                        .with_seq(7)
                        .with_time_us(3_000)
                        .with_latency_us(99)
                        .with_accuracy(0.5),
                    Event::new(EventKind::SinkOverflow, "tail:3")
                        .with_seq(12)
                        .with_time_us(3_001),
                ],
                rollups: vec![Rollup::new(60_000_000, "tenant-a", EventKind::Infer)],
                cursor: ObsCursor { time_us: 3_001, seq: 12 },
                backfill: true,
                truncated: true,
                dropped: 5,
            }),
        ] {
            let back = roundtrip_response(&response);
            assert_eq!(format!("{back:?}"), format!("{response:?}"));
        }

        let mut stats = DeploymentStats {
            name: "tenant".into(),
            classes: 4,
            infer_requests: 100,
            infer_batches: 25,
            largest_batch: 8,
            learn_requests: 3,
            snapshots: 1,
            rejected_infer: 2,
            rejected_learn: 1,
            deferred: 0,
            energy_spent_mj: 5.125,
            energy_budget_mj: Some(12.0),
            durability: None,
        };
        match roundtrip_response(&WireResponse::Serve(ServeResponse::Stats(stats.clone()))) {
            WireResponse::Serve(ServeResponse::Stats(back)) => assert_eq!(back, stats),
            other => panic!("unexpected {other:?}"),
        }
        // Durability counters survive the wire when present.
        stats.durability = Some(ofscil_serve::DurabilityStats {
            wal_records: 9,
            wal_bytes: 4096,
            compactions: 2,
            last_checkpoint_seq: 42,
        });
        match roundtrip_response(&WireResponse::Serve(ServeResponse::Stats(stats.clone()))) {
            WireResponse::Serve(ServeResponse::Stats(back)) => assert_eq!(back, stats),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn typed_errors_survive_the_wire() {
        for error in [
            ServeError::UnknownDeployment("ghost".into()),
            ServeError::DuplicateDeployment("twin".into()),
            ServeError::BudgetExhausted {
                deployment: "t".into(),
                required_mj: 12.0,
                remaining_mj: 0.5,
            },
            ServeError::InvalidRequest("bad shape".into()),
            ServeError::InvalidConfig("zero workers".into()),
            ServeError::Execution("matmul failed".into()),
            ServeError::ShuttingDown,
            ServeError::QueueFull { depth: 64 },
            ServeError::ReadOnlyReplica { deployment: "r".into() },
            ServeError::ShardUnavailable {
                shard: "1 (tcp://127.0.0.1:9)".into(),
                detail: "connection refused".into(),
            },
            ServeError::ReplicationLagged { deployment: "t".into() },
        ] {
            let expect = format!("{error:?}");
            match roundtrip_response(&WireResponse::Error(error)) {
                WireResponse::Error(back) => assert_eq!(format!("{back:?}"), expect),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn wrapped_library_errors_fold_to_execution() {
        let error = ServeError::Core(ofscil_core::CoreError::UnknownClass(3));
        let display = error.to_string();
        match roundtrip_response(&WireResponse::Error(error)) {
            WireResponse::Error(ServeError::Execution(msg)) => assert_eq!(msg, display),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nan_and_infinity_cross_bit_exactly() {
        let request = WireRequest::Serve(ServeRequest::TopUpBudget {
            deployment: "t".into(),
            energy_mj: f64::NAN,
        });
        let frame = encode_request(&request);
        let (kind, payload) = parse_frame(&frame, DEFAULT_MAX_PAYLOAD).unwrap();
        match decode_request(kind, payload).unwrap() {
            WireRequest::Serve(ServeRequest::TopUpBudget { energy_mj, .. }) => {
                assert_eq!(energy_mj.to_bits(), f64::NAN.to_bits());
            }
            other => panic!("unexpected {other:?}"),
        }
        let image =
            Tensor::from_vec(vec![f32::INFINITY, f32::NEG_INFINITY, -0.0, f32::NAN], &[4])
                .unwrap();
        let request = WireRequest::Serve(ServeRequest::Infer {
            deployment: "t".into(),
            image: image.clone(),
        });
        let frame = encode_request(&request);
        let (kind, payload) = parse_frame(&frame, DEFAULT_MAX_PAYLOAD).unwrap();
        match decode_request(kind, payload).unwrap() {
            WireRequest::Serve(ServeRequest::Infer { image: back, .. }) => {
                for (a, b) in image.as_slice().iter().zip(back.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decoders_reject_cross_kind_and_hostile_counts() {
        // A response frame fed to the request decoder is an UnknownKind.
        let frame = encode_response(&WireResponse::Serve(ServeResponse::Snapshot {
            bytes: vec![],
        }));
        let (kind, payload) = parse_frame(&frame, DEFAULT_MAX_PAYLOAD).unwrap();
        assert!(matches!(
            decode_request(kind, payload),
            Err(PayloadError::UnknownKind(_))
        ));

        // A declared element count beyond the payload is refused before
        // allocation.
        let mut payload = Vec::new();
        put_string(&mut payload, "t");
        payload.push(1); // rank 1
        put_u32(&mut payload, u32::MAX); // 4 billion elements, 0 bytes follow
        assert!(matches!(
            decode_request(KIND_REQ_INFER, &payload),
            Err(PayloadError::LengthOverflow { .. })
        ));

        // Trailing bytes after a well-formed message are an error.
        let mut payload = Vec::new();
        put_string(&mut payload, "t");
        payload.push(0xab);
        assert!(matches!(
            decode_request(KIND_REQ_STATS, &payload),
            Err(PayloadError::TrailingBytes { remaining: 1 })
        ));
    }
}
