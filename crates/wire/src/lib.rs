//! `ofscil_wire` — cross-process serving for O-FSCIL learners.
//!
//! The serving runtime in `ofscil_serve` is reachable only through an
//! in-process [`ServeClient`](ofscil_serve::ServeClient). This crate puts
//! the same typed request/response API on a socket, so tenants can live in
//! other processes and read replicas can scale inference horizontally:
//!
//! * [`frame`] — the outer envelope: length-prefixed, checksummed,
//!   versioned binary frames in the same dependency-free style as the
//!   snapshot codec (magic/version/FNV-1a, raw IEEE-754 bits, no serde),
//! * [`codec`] — message bodies: every
//!   [`ServeRequest`](ofscil_serve::ServeRequest) /
//!   [`ServeResponse`](ofscil_serve::ServeResponse) variant, typed
//!   [`ServeError`](ofscil_serve::ServeError)s, and the replication stream
//!   events,
//! * [`WireServer`] — a blocking TCP / Unix-socket frontend that dispatches
//!   decoded frames into the existing `ServeRuntime` worker pool,
//! * [`WireClient`] — mirrors the in-process client API over a connection,
//! * live tails — [`WireClient::obs_subscribe`] registers a streaming
//!   subscription on the server's observability store (wire v8): the server
//!   back-fills everything after the resume cursor, then pushes live
//!   `TailBatch` frames on the persistent connection; every batch carries
//!   the high-water cursor so a reconnect resumes gap-free,
//! * [`Follower`] — a replica that tails a primary's snapshot stream (full
//!   snapshot + sequence-numbered deltas per committed `LearnOnline`),
//!   restores prototypes **bit-exactly**, and serves read-only traffic on
//!   its own socket while rejecting writes with a typed `ReadOnlyReplica`
//!   error. [`Follower::promote`] turns a replica into a writable,
//!   durably-journaled primary for failover,
//! * durability — [`WireServer::run_with_store`] backs the server with an
//!   `ofscil_store` WAL + checkpoint store: commits are journaled before
//!   their replies, replication subscribers (and the one-shot `ReAnchor`
//!   request) are anchored from the latest checkpoint instead of a live
//!   snapshot, and a background thread runs the store's delta compaction.
//!
//! # Example
//!
//! ```no_run
//! use ofscil_core::OFscilModel;
//! use ofscil_nn::models::BackboneKind;
//! use ofscil_serve::{DeploymentSpec, LearnerRegistry, ServeRequest};
//! use ofscil_tensor::{SeedRng, Tensor};
//! use ofscil_wire::{WireClient, WireConfig, WireServer};
//!
//! let mut rng = SeedRng::new(42);
//! let registry = LearnerRegistry::new();
//! registry
//!     .register(
//!         DeploymentSpec::new("tenant-a", (32, 32)),
//!         OFscilModel::new(BackboneKind::Micro, 32, &mut rng),
//!     )
//!     .unwrap();
//! WireServer::run(&registry, &WireConfig::tcp_loopback(), |server| {
//!     // Any process that can reach `server.addr()` is now a tenant.
//!     let mut client = WireClient::connect(server.addr()).unwrap();
//!     let response = client.call(ServeRequest::Infer {
//!         deployment: "tenant-a".into(),
//!         image: Tensor::zeros(&[3, 32, 32]),
//!     });
//!     println!("{response:?}");
//! })
//! .unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod client;
mod error;
pub mod frame;
mod follower;
pub mod net;
mod server;

pub use client::{ObsTailStream, ReplicationStream, WireClient};
pub use codec::{peek_request, ReplEvent, RequestPeek, WireRequest, WireResponse};
pub use error::{FrameError, PayloadError, WireError};
pub use follower::{Follower, FollowerConfig, FollowerHandle};
pub use frame::{
    read_frame, read_frame_verbatim, ReadEvent, VerbatimEvent, VerbatimFrame,
    DEFAULT_MAX_PAYLOAD, WIRE_MAGIC, WIRE_VERSION,
};
pub use net::{BoundAddr, WireBind, WireListener, WireStream};
pub use server::{ShutdownOnDrop, WireConfig, WireHandle, WireServer};
