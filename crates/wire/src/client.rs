//! The socket client: the cross-process counterpart of
//! [`ServeClient`](ofscil_serve::ServeClient).

use crate::codec::{decode_response, encode_request, ReplEvent, WireRequest, WireResponse};
use ofscil_obs::{ObsCursor, ObsQuery, ObsResult, TailBatch};
use crate::error::WireError;
use crate::frame::{
    read_frame, read_frame_verbatim, ReadEvent, VerbatimEvent, DEFAULT_MAX_PAYLOAD,
};
use crate::net::{BoundAddr, WireStream};
use ofscil_serve::{DeploymentExport, ServeRequest, ServeResponse};
use std::io::Write;
use std::net::ToSocketAddrs;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

/// A blocking connection to a [`WireServer`](crate::WireServer).
///
/// Mirrors the in-process [`ServeClient`](ofscil_serve::ServeClient) API:
/// [`WireClient::call`] takes the same [`ServeRequest`] and returns the same
/// [`ServeResponse`] / [`ServeError`](ofscil_serve::ServeError) pair, with
/// the serve error arriving typed through
/// [`WireError::Remote`]. One connection carries one request at a time
/// (strict request/response alternation); open one connection per client
/// thread, exactly as you would clone a `ServeClient`.
#[derive(Debug)]
pub struct WireClient {
    stream: WireStream,
    max_payload: usize,
}

impl WireClient {
    /// Connects to a server's bound address (either socket family).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] when the connection cannot be established.
    pub fn connect(addr: &BoundAddr) -> Result<Self, WireError> {
        Ok(WireClient {
            stream: WireStream::connect(addr)?,
            max_payload: DEFAULT_MAX_PAYLOAD,
        })
    }

    /// Connects to a TCP address, e.g. `"127.0.0.1:4100"`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] when the connection cannot be established.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        Ok(WireClient {
            stream: WireStream::connect_tcp(addr)?,
            max_payload: DEFAULT_MAX_PAYLOAD,
        })
    }

    /// Connects to a Unix-domain socket path.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] when the connection cannot be established.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<std::path::Path>) -> Result<Self, WireError> {
        Ok(WireClient {
            stream: WireStream::connect(&BoundAddr::Unix(path.as_ref().to_path_buf()))?,
            max_payload: DEFAULT_MAX_PAYLOAD,
        })
    }

    /// Overrides the maximum accepted response payload (builder style).
    #[must_use]
    pub fn with_max_payload(mut self, max_payload: usize) -> Self {
        self.max_payload = max_payload;
        self
    }

    /// Applies a socket read timeout. With a timeout set, a replication
    /// stream obtained from [`WireClient::subscribe`] polls its stop flag
    /// between timeout windows.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] when the socket rejects the option.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), WireError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Submits one request and blocks for the response — the wire mirror of
    /// [`ServeClient::call`](ofscil_serve::ServeClient::call).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Remote`] carrying the server-side
    /// [`ServeError`](ofscil_serve::ServeError) when the request was
    /// rejected or failed, and a transport/codec error when the connection
    /// itself broke.
    pub fn call(&mut self, request: ServeRequest) -> Result<ServeResponse, WireError> {
        self.stream.write_all(&encode_request(&WireRequest::Serve(request)))?;
        self.stream.flush()?;
        match self.read_response(None)? {
            Some(WireResponse::Serve(response)) => Ok(response),
            Some(WireResponse::Error(error)) => Err(WireError::Remote(error)),
            Some(other) => Err(WireError::Protocol(format!(
                "server sent an out-of-band response to a serve request: {other:?}"
            ))),
            None => Err(WireError::Io(std::io::ErrorKind::UnexpectedEof.into())),
        }
    }

    /// Reads a deployment's migratable state off the peer — the source half
    /// of a live migration.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Remote`] for server-side refusals (unknown
    /// deployment) and a transport/codec error when the connection broke.
    pub fn export(&mut self, deployment: &str) -> Result<DeploymentExport, WireError> {
        self.stream.write_all(&encode_request(&WireRequest::Export {
            deployment: deployment.to_string(),
        }))?;
        self.stream.flush()?;
        match self.read_response(None)? {
            Some(WireResponse::Export(export)) => Ok(export),
            Some(WireResponse::Error(error)) => Err(WireError::Remote(error)),
            Some(other) => Err(WireError::Protocol(format!(
                "server answered an export with {other:?}"
            ))),
            None => Err(WireError::Io(std::io::ErrorKind::UnexpectedEof.into())),
        }
    }

    /// Installs a deployment's exported state on the peer bit-exactly — the
    /// target half of a live migration. Returns the restored class count.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Remote`] for server-side refusals (unknown
    /// deployment, dimension mismatch, read-only replica) and a
    /// transport/codec error when the connection broke.
    pub fn import(&mut self, export: &DeploymentExport) -> Result<u64, WireError> {
        self.stream.write_all(&encode_request(&WireRequest::Import(export.clone())))?;
        self.stream.flush()?;
        match self.read_response(None)? {
            Some(WireResponse::Imported { classes }) => Ok(classes),
            Some(WireResponse::Error(error)) => Err(WireError::Remote(error)),
            Some(other) => Err(WireError::Protocol(format!(
                "server answered an import with {other:?}"
            ))),
            None => Err(WireError::Io(std::io::ErrorKind::UnexpectedEof.into())),
        }
    }

    /// Writes one pre-encoded request frame and reads back the complete raw
    /// response frame without interpreting or re-encoding either — the
    /// forwarding hook a routing frontend uses to proxy a client's frame to
    /// the owning shard and relay the shard's answer byte-identically.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] when the connection broke and a frame error
    /// when the response envelope is corrupt. Remote serve errors are *not*
    /// surfaced here — they stay inside the returned frame for the original
    /// client to decode.
    pub fn forward_frame(&mut self, frame: &[u8]) -> Result<Vec<u8>, WireError> {
        self.stream.write_all(frame)?;
        self.stream.flush()?;
        match read_frame_verbatim(&mut self.stream, self.max_payload, None)? {
            VerbatimEvent::Frame(reply) => Ok(reply.bytes),
            VerbatimEvent::Eof | VerbatimEvent::Shutdown => {
                Err(WireError::Io(std::io::ErrorKind::UnexpectedEof.into()))
            }
        }
    }

    /// Runs an observability range query against the peer's event store.
    /// Sent to a single server this scans that server's timeline; sent to a
    /// router it is scatter-gathered across every shard and the merged,
    /// time-ordered result comes back — one call reconstructing a tenant's
    /// trajectory even across a live migration.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Remote`] when the peer has observability
    /// disabled (a typed `InvalidRequest`) and a transport/codec error when
    /// the connection broke.
    pub fn obs_query(&mut self, query: &ObsQuery) -> Result<ObsResult, WireError> {
        self.stream.write_all(&encode_request(&WireRequest::ObsQuery(query.clone())))?;
        self.stream.flush()?;
        match self.read_response(None)? {
            Some(WireResponse::Obs(result)) => Ok(*result),
            Some(WireResponse::Error(error)) => Err(WireError::Remote(error)),
            Some(other) => Err(WireError::Protocol(format!(
                "server answered an obs query with {other:?}"
            ))),
            None => Err(WireError::Io(std::io::ErrorKind::UnexpectedEof.into())),
        }
    }

    /// Announces a follower to a routing frontend as a promotion candidate:
    /// `upstream` is the shard address the follower replicates, `follower`
    /// the address it listens on. Returns how many followers the router now
    /// has registered for that shard.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Remote`] when the peer is a plain shard (a typed
    /// `InvalidRequest` — advertisement is a router operation) or does not
    /// know the upstream address, and a transport/codec error when the
    /// connection broke.
    pub fn advertise_follower(
        &mut self,
        upstream: &str,
        follower: &str,
    ) -> Result<u64, WireError> {
        self.stream.write_all(&encode_request(&WireRequest::AdvertiseFollower {
            upstream: upstream.to_string(),
            follower: follower.to_string(),
        }))?;
        self.stream.flush()?;
        match self.read_response(None)? {
            Some(WireResponse::Advertised { registered }) => Ok(registered),
            Some(WireResponse::Error(error)) => Err(WireError::Remote(error)),
            Some(other) => Err(WireError::Protocol(format!(
                "server answered a follower advertisement with {other:?}"
            ))),
            None => Err(WireError::Io(std::io::ErrorKind::UnexpectedEof.into())),
        }
    }

    /// Fetches a fresh full-snapshot anchor `(seq, snapshot-codec bytes)`
    /// for one deployment. A durably-backed server answers straight from its
    /// store's latest checkpoint (plus the compacted WAL tail) without
    /// touching the deployment's model lock; a store-less server falls back
    /// to a live snapshot. The cheap re-anchor path for far-behind
    /// subscribers and backup jobs.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Remote`] for server-side refusals (unknown
    /// deployment) and a transport/codec error when the connection broke.
    pub fn re_anchor(&mut self, deployment: &str) -> Result<(u64, Vec<u8>), WireError> {
        self.stream.write_all(&encode_request(&WireRequest::ReAnchor {
            deployment: deployment.to_string(),
        }))?;
        self.stream.flush()?;
        match self.read_response(None)? {
            Some(WireResponse::Repl(ReplEvent::Full { seq, snapshot })) => Ok((seq, snapshot)),
            Some(WireResponse::Error(error)) => Err(WireError::Remote(error)),
            Some(other) => Err(WireError::Protocol(format!(
                "server answered a re-anchor with {other:?}"
            ))),
            None => Err(WireError::Io(std::io::ErrorKind::UnexpectedEof.into())),
        }
    }

    /// Switches the connection into replication streaming for one
    /// deployment. The server answers with a full-snapshot anchor followed
    /// by sequence-numbered deltas; iterate them with
    /// [`ReplicationStream::next_event`].
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] when the subscription cannot be written.
    pub fn subscribe(mut self, deployment: &str) -> Result<ReplicationStream, WireError> {
        self.stream.write_all(&encode_request(&WireRequest::Subscribe {
            deployment: deployment.to_string(),
        }))?;
        self.stream.flush()?;
        Ok(ReplicationStream { stream: self.stream, max_payload: self.max_payload })
    }

    /// Switches the connection into **live-tail streaming** on the peer's
    /// observability store. The server answers with the cursor-ranged
    /// back-fill (batches flagged `backfill`), then streams live batches;
    /// iterate them with [`ObsTailStream::next_batch`]. Pass the cursor from
    /// the last consumed batch to resume a broken subscription with no gaps
    /// and no duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] when the subscription cannot be written.
    pub fn obs_subscribe(
        mut self,
        query: &ObsQuery,
        cursor: Option<ObsCursor>,
    ) -> Result<ObsTailStream, WireError> {
        self.stream.write_all(&encode_request(&WireRequest::ObsSubscribe {
            query: query.clone(),
            cursor,
        }))?;
        self.stream.flush()?;
        Ok(ObsTailStream { stream: self.stream, max_payload: self.max_payload })
    }

    fn read_response(
        &mut self,
        stop: Option<&AtomicBool>,
    ) -> Result<Option<WireResponse>, WireError> {
        match read_frame(&mut self.stream, self.max_payload, stop)? {
            ReadEvent::Frame(kind, payload) => {
                Ok(Some(decode_response(kind, &payload)?))
            }
            ReadEvent::Eof | ReadEvent::Shutdown => Ok(None),
        }
    }
}

/// The receive side of a replication subscription.
#[derive(Debug)]
pub struct ReplicationStream {
    stream: WireStream,
    max_payload: usize,
}

impl ReplicationStream {
    /// Blocks for the next replication event. Returns `Ok(None)` when the
    /// server closed the stream, or — if the underlying socket carries a
    /// read timeout (see [`WireClient::set_read_timeout`]) — when `stop` was
    /// raised while waiting.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Remote`] when the server answered the
    /// subscription with an error (e.g. an unknown deployment), and a
    /// transport/codec error when the connection broke.
    pub fn next_event(
        &mut self,
        stop: Option<&AtomicBool>,
    ) -> Result<Option<ReplEvent>, WireError> {
        match read_frame(&mut self.stream, self.max_payload, stop)? {
            ReadEvent::Eof | ReadEvent::Shutdown => Ok(None),
            ReadEvent::Frame(kind, payload) => match decode_response(kind, &payload)? {
                WireResponse::Repl(event) => Ok(Some(event)),
                WireResponse::Error(error) => Err(WireError::Remote(error)),
                other => Err(WireError::Protocol(format!(
                    "server sent a request response on a replication stream: {other:?}"
                ))),
            },
        }
    }
}

/// The receive side of a live-tail subscription
/// (see [`WireClient::obs_subscribe`]).
#[derive(Debug)]
pub struct ObsTailStream {
    stream: WireStream,
    max_payload: usize,
}

impl ObsTailStream {
    /// Blocks for the next tail batch. Returns `Ok(None)` when the server
    /// closed the stream, or — if the underlying socket carries a read
    /// timeout (see [`WireClient::set_read_timeout`]) — when `stop` was
    /// raised while waiting.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Remote`] when the server answered the
    /// subscription with a typed error (e.g. observability disabled), and a
    /// transport/codec error when the connection broke.
    pub fn next_batch(
        &mut self,
        stop: Option<&AtomicBool>,
    ) -> Result<Option<TailBatch>, WireError> {
        match read_frame(&mut self.stream, self.max_payload, stop)? {
            ReadEvent::Eof | ReadEvent::Shutdown => Ok(None),
            ReadEvent::Frame(kind, payload) => match decode_response(kind, &payload)? {
                WireResponse::Tail(batch) => Ok(Some(batch)),
                WireResponse::Error(error) => Err(WireError::Remote(error)),
                other => Err(WireError::Protocol(format!(
                    "server sent a request response on a tail stream: {other:?}"
                ))),
            },
        }
    }
}
