//! The outer frame envelope: length-prefixed, checksummed, versioned.
//!
//! Every message on a wire connection travels in exactly one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"OFWR"
//! 4       2     wire format version, little-endian u16 (currently 5)
//! 6       1     message kind (see `codec`)
//! 7       1     reserved (zero)
//! 8       4     payload length, little-endian u32
//! 12      …     payload (message body, encoded by `codec`)
//! end-4   4     FNV-1a checksum of every preceding byte, little-endian u32
//! ```
//!
//! The same deliberately tiny style as the snapshot codec in
//! `ofscil_serve::snapshot`: self-describing, no serde, corruption detected
//! by checksum, hostile lengths rejected before allocation.

use crate::error::{FrameError, WireError};
use std::io::{ErrorKind, Read};
use std::sync::atomic::{AtomicBool, Ordering};

/// Magic bytes identifying a wire frame.
pub const WIRE_MAGIC: [u8; 4] = *b"OFWR";

/// Current wire format version. Bumped whenever the message set changes —
/// v2 added the migration endpoints (`Export`/`Import`, kinds `0x07`/`0x08`,
/// responses `0x47`/`0x48`) and the `ShardUnavailable`/`ReplicationLagged`
/// error tags; v3 added the `ReAnchor` request (kind `0x09`, answered with a
/// checkpoint-served `Repl Full`) and the durability counters in the `Stats`
/// payload; v4 split the `Stats` payload's lump `rejected` counter into
/// per-request-type `rejected_infer` / `rejected_learn` counters — so a
/// mismatched peer fails fast with a clean
/// [`FrameError::UnsupportedVersion`] instead of a confusing `BadTag` deep
/// inside a payload; v5 added the observability query (`ObsQuery` kind
/// `0x0A`, answered with an `ObsResult` response `0x49`) — the first
/// scatter-gather request a router fans out to every shard instead of
/// forwarding to one; v6 extended the `Export`/`Import` payload with the
/// deployment's billing state (spent/budget millijoules plus lifetime request
/// counters, so a live migration moves the meter with the model) and added
/// follower advertisement (`AdvertiseFollower` kind `0x0B`, answered with
/// `Advertised` `0x4A`) so the control plane learns its promotion candidates;
/// v7 appended a resolution byte to the `ObsQuery` payload (raw / rollup /
/// auto) and a vector of per-minute rollup cells to the `ObsResult`
/// response, so long-horizon timelines travel as downsampled aggregates
/// instead of raw rows; v8 added streaming observability — the
/// `ObsSubscribe` request (kind `0x0C`, carrying an `ObsQuery` filter plus
/// an optional `(time_us, seq)` resume cursor) answered by an open-ended
/// sequence of `TailBatch` frames (kind `0x63`, back-fill first, then live
/// batches on the persistent connection) — and appended the 32-bucket
/// latency histogram to the `ObsResult` response payload.
pub const WIRE_VERSION: u16 = 8;

/// Fixed frame header length in bytes.
pub const HEADER_LEN: usize = 12;

/// Trailing checksum length in bytes.
pub const CHECKSUM_LEN: usize = 4;

/// Default maximum payload size a peer will accept (16 MiB) — far above any
/// legitimate O-FSCIL message, far below anything that could hurt.
pub const DEFAULT_MAX_PAYLOAD: usize = 16 << 20;

/// FNV-1a 32-bit hash — the same dependency-free corruption check the
/// snapshot codec uses. Not a cryptographic integrity check.
pub(crate) fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Serializes one frame.
pub fn frame_bytes(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    bytes.extend_from_slice(&WIRE_MAGIC);
    bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    bytes.push(kind);
    bytes.push(0u8);
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(payload);
    let checksum = fnv1a(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Validates a frame header (first [`HEADER_LEN`] bytes, length checked by
/// the caller) and returns `(kind, payload_len)`.
fn parse_header(header: &[u8], max_payload: usize) -> Result<(u8, usize), FrameError> {
    let magic: [u8; 4] = header[0..4].try_into().expect("length checked");
    if magic != WIRE_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("length checked"));
    if version != WIRE_VERSION {
        return Err(FrameError::UnsupportedVersion(version));
    }
    let kind = header[6];
    if header[7] != 0 {
        return Err(FrameError::BadReserved(header[7]));
    }
    let declared = u32::from_le_bytes(header[8..12].try_into().expect("length checked")) as usize;
    if declared > max_payload {
        return Err(FrameError::Oversize { declared, max: max_payload });
    }
    Ok((kind, declared))
}

/// Parses exactly one frame out of an in-memory buffer, returning the kind
/// byte and the payload slice.
///
/// # Errors
///
/// Returns a typed [`FrameError`] for every way the bytes can be wrong:
/// truncation, bad magic, unknown version, hostile length, checksum damage,
/// trailing garbage. Never panics.
pub fn parse_frame(bytes: &[u8], max_payload: usize) -> Result<(u8, &[u8]), FrameError> {
    let min = HEADER_LEN + CHECKSUM_LEN;
    if bytes.len() < min {
        return Err(FrameError::Truncated { needed: min, actual: bytes.len() });
    }
    let (kind, payload_len) = parse_header(&bytes[..HEADER_LEN], max_payload)?;
    let total = HEADER_LEN + payload_len + CHECKSUM_LEN;
    if bytes.len() < total {
        return Err(FrameError::Truncated { needed: total, actual: bytes.len() });
    }
    if bytes.len() > total {
        return Err(FrameError::TrailingBytes { remaining: bytes.len() - total });
    }
    let body_end = HEADER_LEN + payload_len;
    let stored = u32::from_le_bytes(bytes[body_end..total].try_into().expect("length checked"));
    let computed = fnv1a(&bytes[..body_end]);
    if stored != computed {
        return Err(FrameError::ChecksumMismatch { stored, computed });
    }
    Ok((kind, &bytes[HEADER_LEN..body_end]))
}

/// What a blocking frame read produced.
#[derive(Debug)]
pub enum ReadEvent {
    /// One complete, checksum-verified frame: `(kind, payload)`.
    Frame(u8, Vec<u8>),
    /// The peer closed the connection cleanly (EOF on a frame boundary).
    Eof,
    /// The shutdown flag was raised while waiting for bytes.
    Shutdown,
}

/// A complete, checksum-verified frame kept as its raw bytes — what a
/// forwarder relays to the next hop without re-encoding.
#[derive(Debug)]
pub struct VerbatimFrame {
    /// The message kind (header byte 6).
    pub kind: u8,
    /// The full frame: header, payload and trailing checksum.
    pub bytes: Vec<u8>,
}

impl VerbatimFrame {
    /// The message payload slice inside [`VerbatimFrame::bytes`].
    pub fn payload(&self) -> &[u8] {
        &self.bytes[HEADER_LEN..self.bytes.len() - CHECKSUM_LEN]
    }
}

/// What a blocking verbatim frame read produced.
#[derive(Debug)]
pub enum VerbatimEvent {
    /// One complete, checksum-verified frame as raw bytes.
    Frame(VerbatimFrame),
    /// The peer closed the connection cleanly (EOF on a frame boundary).
    Eof,
    /// The shutdown flag was raised while waiting for bytes.
    Shutdown,
}

/// Outcome of filling a fixed-size buffer from the stream.
enum Fill {
    /// The buffer is complete.
    Done,
    /// Clean EOF before the first byte (only reported when `eof_ok`).
    Eof,
    /// The shutdown flag was raised while waiting.
    Shutdown,
}

/// Fills `buf` completely from the stream, tolerating read timeouts.
///
/// Timeouts (`WouldBlock`/`TimedOut`, produced when the socket has a read
/// timeout configured) poll the optional shutdown flag and otherwise retry,
/// so a frame that arrives in pieces across timeout windows is still
/// assembled correctly. EOF mid-buffer is an `UnexpectedEof` error.
fn read_exact_interruptible(
    stream: &mut impl Read,
    buf: &mut [u8],
    shutdown: Option<&AtomicBool>,
    eof_ok: bool,
) -> Result<Fill, WireError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        if let Some(flag) = shutdown {
            if flag.load(Ordering::Acquire) {
                return Ok(Fill::Shutdown);
            }
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && eof_ok {
                    return Ok(Fill::Eof);
                }
                return Err(WireError::Io(ErrorKind::UnexpectedEof.into()));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(Fill::Done)
}

/// Reads one frame from a stream, blocking until it is complete.
///
/// When the socket carries a read timeout, every timeout window polls
/// `shutdown`; a raised flag yields [`ReadEvent::Shutdown`] so server
/// connection threads terminate promptly without abandoning a half-read
/// frame by accident.
///
/// Public so frame-speaking frontends above this crate (the `ofscil_router`
/// consistent-hash router) can read frames off their own accepted sockets.
///
/// # Errors
///
/// Returns a typed [`WireError`] for transport failures and for every way
/// the frame bytes can be wrong; never panics.
pub fn read_frame(
    stream: &mut impl Read,
    max_payload: usize,
    shutdown: Option<&AtomicBool>,
) -> Result<ReadEvent, WireError> {
    Ok(match read_frame_verbatim(stream, max_payload, shutdown)? {
        VerbatimEvent::Eof => ReadEvent::Eof,
        VerbatimEvent::Shutdown => ReadEvent::Shutdown,
        VerbatimEvent::Frame(frame) => {
            let mut bytes = frame.bytes;
            bytes.truncate(bytes.len() - CHECKSUM_LEN);
            bytes.drain(..HEADER_LEN);
            ReadEvent::Frame(frame.kind, bytes)
        }
    })
}

/// Like [`read_frame`], but keeps the complete validated frame as raw bytes,
/// so a forwarder (the `ofscil_router` frontend) can relay it to the next
/// hop byte-identically — no payload copy, no checksum recomputation.
///
/// # Errors
///
/// Returns a typed [`WireError`] for transport failures and for every way
/// the frame bytes can be wrong; never panics.
pub fn read_frame_verbatim(
    stream: &mut impl Read,
    max_payload: usize,
    shutdown: Option<&AtomicBool>,
) -> Result<VerbatimEvent, WireError> {
    let mut header = [0u8; HEADER_LEN];
    match read_exact_interruptible(stream, &mut header, shutdown, true)? {
        Fill::Eof => return Ok(VerbatimEvent::Eof),
        Fill::Shutdown => return Ok(VerbatimEvent::Shutdown),
        Fill::Done => {}
    }
    let (kind, payload_len) = parse_header(&header, max_payload)?;
    let total = HEADER_LEN + payload_len + CHECKSUM_LEN;
    let mut bytes = vec![0u8; total];
    bytes[..HEADER_LEN].copy_from_slice(&header);
    match read_exact_interruptible(stream, &mut bytes[HEADER_LEN..], shutdown, false)? {
        Fill::Shutdown => return Ok(VerbatimEvent::Shutdown),
        Fill::Eof | Fill::Done => {}
    }
    let body_end = total - CHECKSUM_LEN;
    let stored =
        u32::from_le_bytes(bytes[body_end..].try_into().expect("length checked"));
    let computed = fnv1a(&bytes[..body_end]);
    if stored != computed {
        return Err(FrameError::ChecksumMismatch { stored, computed }.into());
    }
    Ok(VerbatimEvent::Frame(VerbatimFrame { kind, bytes }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_bytes_and_stream() {
        let frame = frame_bytes(0x41, b"hello wire");
        let (kind, payload) = parse_frame(&frame, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(kind, 0x41);
        assert_eq!(payload, b"hello wire");

        let mut cursor = std::io::Cursor::new(frame);
        match read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD, None).unwrap() {
            ReadEvent::Frame(kind, payload) => {
                assert_eq!(kind, 0x41);
                assert_eq!(payload, b"hello wire");
            }
            _ => panic!("expected a frame"),
        }
        // The stream is now at EOF.
        match read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD, None).unwrap() {
            ReadEvent::Eof => {}
            _ => panic!("expected EOF"),
        }
    }

    #[test]
    fn verbatim_read_returns_the_exact_frame_bytes() {
        let frame = frame_bytes(0x01, b"forward me");
        let mut cursor = std::io::Cursor::new(frame.clone());
        match read_frame_verbatim(&mut cursor, DEFAULT_MAX_PAYLOAD, None).unwrap() {
            VerbatimEvent::Frame(verbatim) => {
                assert_eq!(verbatim.kind, 0x01);
                assert_eq!(verbatim.bytes, frame, "relay bytes must be byte-identical");
                assert_eq!(verbatim.payload(), b"forward me");
            }
            other => panic!("expected a frame, got {other:?}"),
        }
        match read_frame_verbatim(&mut cursor, DEFAULT_MAX_PAYLOAD, None).unwrap() {
            VerbatimEvent::Eof => {}
            other => panic!("expected EOF, got {other:?}"),
        }
        // Corruption is still caught before the bytes are handed over.
        let mut bad = frame.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        let mut cursor = std::io::Cursor::new(bad);
        assert!(matches!(
            read_frame_verbatim(&mut cursor, DEFAULT_MAX_PAYLOAD, None),
            Err(WireError::Frame(FrameError::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn empty_payload_frames_are_legal() {
        let frame = frame_bytes(0x03, b"");
        let (kind, payload) = parse_frame(&frame, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(kind, 0x03);
        assert!(payload.is_empty());
    }

    #[test]
    fn corruption_is_typed_never_a_panic() {
        let frame = frame_bytes(0x01, b"payload");

        let mut bad = frame.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            parse_frame(&bad, DEFAULT_MAX_PAYLOAD),
            Err(FrameError::BadMagic(_))
        ));

        let mut bad = frame.clone();
        bad[4] = 0x7f;
        assert!(matches!(
            parse_frame(&bad, DEFAULT_MAX_PAYLOAD),
            Err(FrameError::UnsupportedVersion(_))
        ));

        let mut bad = frame.clone();
        bad[7] = 1;
        assert!(matches!(
            parse_frame(&bad, DEFAULT_MAX_PAYLOAD),
            Err(FrameError::BadReserved(1))
        ));

        let mut bad = frame.clone();
        bad[HEADER_LEN] ^= 0x10;
        assert!(matches!(
            parse_frame(&bad, DEFAULT_MAX_PAYLOAD),
            Err(FrameError::ChecksumMismatch { .. })
        ));

        assert!(matches!(
            parse_frame(&frame[..frame.len() - 1], DEFAULT_MAX_PAYLOAD),
            Err(FrameError::Truncated { .. })
        ));
        assert!(matches!(
            parse_frame(&frame[..3], DEFAULT_MAX_PAYLOAD),
            Err(FrameError::Truncated { .. })
        ));

        let mut extended = frame.clone();
        extended.push(0);
        assert!(matches!(
            parse_frame(&extended, DEFAULT_MAX_PAYLOAD),
            Err(FrameError::TrailingBytes { remaining: 1 })
        ));

        // A hostile declared length is refused before allocation.
        assert!(matches!(
            parse_frame(&frame, 3),
            Err(FrameError::Oversize { declared: 7, max: 3 })
        ));
    }

    #[test]
    fn stream_reader_rejects_hostile_lengths_without_allocating() {
        let mut frame = frame_bytes(0x01, b"x");
        frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = std::io::Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD, None),
            Err(WireError::Frame(FrameError::Oversize { .. }))
        ));
    }

    #[test]
    fn stream_reader_flags_mid_frame_eof() {
        let frame = frame_bytes(0x01, b"payload");
        let mut cursor = std::io::Cursor::new(frame[..frame.len() - 2].to_vec());
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD, None),
            Err(WireError::Io(_))
        ));
    }
}
