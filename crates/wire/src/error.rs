//! Error types of the wire subsystem.
//!
//! Decoding malformed bytes must *never* panic: every way a frame or payload
//! can be wrong has a typed variant here, and the corruption property suite
//! (`tests/wire_codec.rs`) drives random damage through the decoders to hold
//! that line.

use ofscil_serve::ServeError;
use std::error::Error;
use std::fmt;
use std::io;

/// Failure at the frame layer: the outer length-prefixed, checksummed
/// envelope could not be parsed. A frame error on a live connection means
/// the byte stream can no longer be trusted and the connection is dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the fixed header + checksum.
    Truncated {
        /// Bytes needed to make progress.
        needed: usize,
        /// Bytes actually available.
        actual: usize,
    },
    /// The magic bytes do not identify a wire frame.
    BadMagic([u8; 4]),
    /// The frame version is not understood by this decoder.
    UnsupportedVersion(u16),
    /// The declared payload length exceeds the configured maximum. Checked
    /// before any allocation, so a hostile length cannot balloon memory.
    Oversize {
        /// Payload length the header declares.
        declared: usize,
        /// Configured maximum payload length.
        max: usize,
    },
    /// The reserved header byte is not zero.
    BadReserved(u8),
    /// The checksum over header + payload does not match the stored one.
    ChecksumMismatch {
        /// Checksum stored in the frame.
        stored: u32,
        /// Checksum recomputed over the frame.
        computed: u32,
    },
    /// The buffer holds more bytes than the single frame it should contain.
    TrailingBytes {
        /// Extra bytes after the frame.
        remaining: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { needed, actual } => {
                write!(f, "frame truncated: {actual} bytes, need at least {needed}")
            }
            FrameError::BadMagic(magic) => write!(f, "bad frame magic {magic:?}"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            FrameError::Oversize { declared, max } => {
                write!(f, "frame declares {declared} payload bytes, limit is {max}")
            }
            FrameError::BadReserved(b) => write!(f, "reserved frame byte is {b:#04x}, not zero"),
            FrameError::ChecksumMismatch { stored, computed } => write!(
                f,
                "frame checksum {stored:#010x} does not match computed {computed:#010x}"
            ),
            FrameError::TrailingBytes { remaining } => {
                write!(f, "{remaining} unexpected bytes after the frame")
            }
        }
    }
}

impl Error for FrameError {}

/// Failure at the message layer: the frame was intact but its payload does
/// not decode into a message. The framing is still synchronized, so a server
/// can answer with a typed error and keep the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PayloadError {
    /// The frame kind byte names no known message.
    UnknownKind(u8),
    /// The payload ended before a field was complete.
    Truncated {
        /// Byte offset the decoder stopped at.
        offset: usize,
        /// Bytes the next field needs.
        needed: usize,
        /// Bytes remaining in the payload.
        remaining: usize,
    },
    /// The payload holds more bytes than the message consumed.
    TrailingBytes {
        /// Unconsumed byte count.
        remaining: usize,
    },
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// An enum discriminant inside the payload is out of range.
    BadTag {
        /// Which field carried the tag.
        field: &'static str,
        /// The offending value.
        tag: u8,
    },
    /// A declared element count cannot fit in the remaining payload. Checked
    /// before allocation.
    LengthOverflow {
        /// Which field declared the count.
        field: &'static str,
        /// The declared element count.
        declared: u64,
    },
    /// A tensor payload is inconsistent (shape/data mismatch).
    BadTensor(String),
    /// A numeric value does not fit the platform's `usize`.
    ValueOverflow {
        /// Which field overflowed.
        field: &'static str,
        /// The offending value.
        value: u64,
    },
}

impl fmt::Display for PayloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PayloadError::UnknownKind(kind) => write!(f, "unknown message kind {kind:#04x}"),
            PayloadError::Truncated { offset, needed, remaining } => write!(
                f,
                "payload truncated at offset {offset}: need {needed} bytes, {remaining} remain"
            ),
            PayloadError::TrailingBytes { remaining } => {
                write!(f, "{remaining} unconsumed bytes after the message")
            }
            PayloadError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            PayloadError::BadTag { field, tag } => {
                write!(f, "field {field:?} carries invalid tag {tag:#04x}")
            }
            PayloadError::LengthOverflow { field, declared } => {
                write!(f, "field {field:?} declares {declared} elements, more than fit")
            }
            PayloadError::BadTensor(msg) => write!(f, "tensor payload invalid: {msg}"),
            PayloadError::ValueOverflow { field, value } => {
                write!(f, "field {field:?} value {value} overflows usize")
            }
        }
    }
}

impl Error for PayloadError {}

/// Error of the wire subsystem: transport, codec, protocol and remote
/// failures.
#[derive(Debug)]
pub enum WireError {
    /// A socket operation failed.
    Io(io::Error),
    /// The outer frame envelope could not be parsed (stream desynchronized).
    Frame(FrameError),
    /// A frame's payload could not be decoded into a message.
    Payload(PayloadError),
    /// The peer answered with a serve-side error. This is the remote
    /// counterpart of the [`ServeError`] an in-process
    /// [`ServeClient`](ofscil_serve::ServeClient) call returns.
    Remote(ServeError),
    /// The local serving runtime refused (e.g. invalid configuration).
    Runtime(ServeError),
    /// The peer sent a message that is valid on its own but wrong for the
    /// protocol state (e.g. a replication event as a request reply).
    Protocol(String),
    /// A replication stream skipped a sequence number; the follower's state
    /// can no longer be proven bit-exact and must resync from a full
    /// snapshot.
    ReplicationGap {
        /// Deployment whose stream gapped.
        deployment: String,
        /// Sequence number the follower expected next.
        expected: u64,
        /// Sequence number that actually arrived.
        got: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Frame(e) => write!(f, "frame error: {e}"),
            WireError::Payload(e) => write!(f, "payload error: {e}"),
            WireError::Remote(e) => write!(f, "remote error: {e}"),
            WireError::Runtime(e) => write!(f, "local runtime error: {e}"),
            WireError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            WireError::ReplicationGap { deployment, expected, got } => write!(
                f,
                "replication stream for {deployment:?} gapped: expected seq {expected}, got {got}"
            ),
        }
    }
}

impl Error for WireError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::Frame(e) => Some(e),
            WireError::Payload(e) => Some(e),
            WireError::Remote(e) | WireError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        WireError::Frame(e)
    }
}

impl From<PayloadError> for WireError {
    fn from(e: PayloadError) -> Self {
        WireError::Payload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = WireError::Frame(FrameError::BadMagic(*b"NOPE"));
        assert!(e.to_string().contains("magic"));
        assert!(e.source().is_some());
        let e = WireError::Payload(PayloadError::UnknownKind(0xff));
        assert!(e.to_string().contains("0xff"));
        let e = WireError::Remote(ServeError::ShuttingDown);
        assert!(e.source().is_some());
        let e = WireError::ReplicationGap { deployment: "t".into(), expected: 4, got: 9 };
        assert!(e.to_string().contains("expected seq 4"));
        assert!(e.source().is_none());
        let e = WireError::Payload(PayloadError::LengthOverflow { field: "labels", declared: 9 });
        assert!(e.to_string().contains("labels"));
    }
}
