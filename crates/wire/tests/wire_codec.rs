//! Property coverage for the wire codec.
//!
//! Two suites, both seeded and deterministic:
//!
//! * **round-trip identity** — random request/response values of every
//!   variant encode to a frame and decode back to an equal value, with
//!   floats compared by bit pattern,
//! * **corruption** — every single-byte flip, every truncation length,
//!   trailing garbage, unknown versions/kinds and hostile declared lengths
//!   must come back as *typed* decode errors. Decoding attacker-controlled
//!   bytes must never panic.

use ofscil_data::Batch;
use ofscil_serve::{DeploymentStats, ServeError, ServeRequest, ServeResponse};
use ofscil_tensor::{SeedRng, Tensor};
use ofscil_wire::codec::{decode_request, decode_response, encode_request, encode_response};
use ofscil_wire::frame::{frame_bytes, parse_frame};
use ofscil_wire::{
    FrameError, PayloadError, ReplEvent, WireRequest, WireResponse, DEFAULT_MAX_PAYLOAD,
};

// ---------------------------------------------------------------------------
// Random value generators
// ---------------------------------------------------------------------------

fn random_name(rng: &mut SeedRng) -> String {
    const ALPHABET: &[&str] = &["a", "b", "Z", "7", "-", "_", "é", "λ", "учё", "tenant"];
    let len = rng.below(6);
    (0..len).map(|_| ALPHABET[rng.below(ALPHABET.len())]).collect()
}

fn random_f32(rng: &mut SeedRng) -> f32 {
    match rng.below(8) {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => -0.0,
        4 => f32::MIN_POSITIVE,
        _ => rng.normal() * 10f32.powi(rng.below(9) as i32 - 4),
    }
}

fn random_f64(rng: &mut SeedRng) -> f64 {
    match rng.below(6) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => -0.0,
        _ => f64::from(rng.normal()) * 1e3,
    }
}

fn random_tensor(rng: &mut SeedRng) -> Tensor {
    let rank = 1 + rng.below(4);
    let dims: Vec<usize> = (0..rank).map(|_| 1 + rng.below(5)).collect();
    let len = dims.iter().product();
    let data: Vec<f32> = (0..len).map(|_| random_f32(rng)).collect();
    Tensor::from_vec(data, &dims).expect("consistent dims")
}

fn random_request(rng: &mut SeedRng) -> WireRequest {
    match rng.below(7) {
        0 => WireRequest::Serve(ServeRequest::Infer {
            deployment: random_name(rng),
            image: random_tensor(rng),
        }),
        1 => {
            let samples = 1 + rng.below(4);
            let side = 1 + rng.below(4);
            let len = samples * 3 * side * side;
            let images =
                Tensor::from_vec((0..len).map(|_| random_f32(rng)).collect(), &[
                    samples, 3, side, side,
                ])
                .expect("consistent dims");
            WireRequest::Serve(ServeRequest::LearnOnline {
                deployment: random_name(rng),
                batch: Batch {
                    images,
                    labels: (0..samples).map(|_| rng.below(1000)).collect(),
                },
            })
        }
        2 => WireRequest::Serve(ServeRequest::Snapshot { deployment: random_name(rng) }),
        3 => WireRequest::Serve(ServeRequest::Stats { deployment: random_name(rng) }),
        4 => WireRequest::Serve(ServeRequest::TopUpBudget {
            deployment: random_name(rng),
            energy_mj: random_f64(rng),
        }),
        5 => WireRequest::ReAnchor { deployment: random_name(rng) },
        _ => WireRequest::Subscribe { deployment: random_name(rng) },
    }
}

fn random_error(rng: &mut SeedRng) -> ServeError {
    match rng.below(9) {
        0 => ServeError::UnknownDeployment(random_name(rng)),
        1 => ServeError::DuplicateDeployment(random_name(rng)),
        2 => ServeError::BudgetExhausted {
            deployment: random_name(rng),
            required_mj: random_f64(rng),
            remaining_mj: random_f64(rng),
        },
        3 => ServeError::InvalidRequest(random_name(rng)),
        4 => ServeError::InvalidConfig(random_name(rng)),
        5 => ServeError::Execution(random_name(rng)),
        6 => ServeError::ShuttingDown,
        7 => ServeError::QueueFull { depth: rng.below(1 << 20) },
        _ => ServeError::ReadOnlyReplica { deployment: random_name(rng) },
    }
}

fn random_response(rng: &mut SeedRng) -> WireResponse {
    match rng.below(8) {
        0 => WireResponse::Serve(ServeResponse::Prediction {
            class: rng.below(10_000),
            similarity: random_f32(rng),
            batched_with: 1 + rng.below(64),
        }),
        1 => WireResponse::Serve(ServeResponse::Learned {
            classes: (0..rng.below(8)).map(|_| rng.below(100)).collect(),
            total_classes: rng.below(200),
        }),
        2 => {
            let len = rng.below(64);
            let mut bytes = vec![0u8; len];
            rng.fill_bytes(&mut bytes);
            WireResponse::Serve(ServeResponse::Snapshot { bytes })
        }
        3 => WireResponse::Serve(ServeResponse::Stats(DeploymentStats {
            name: random_name(rng),
            classes: rng.below(100),
            infer_requests: rng.next_u64() >> 8,
            infer_batches: rng.next_u64() >> 8,
            largest_batch: rng.below(64),
            learn_requests: rng.next_u64() >> 8,
            snapshots: rng.next_u64() >> 40,
            rejected_infer: rng.next_u64() >> 40,
            rejected_learn: rng.next_u64() >> 40,
            deferred: rng.next_u64() >> 40,
            energy_spent_mj: random_f64(rng),
            energy_budget_mj: rng.chance(0.5).then(|| random_f64(rng)),
            durability: rng.chance(0.5).then(|| ofscil_serve::DurabilityStats {
                wal_records: rng.next_u64() >> 40,
                wal_bytes: rng.next_u64() >> 32,
                compactions: rng.next_u64() >> 48,
                last_checkpoint_seq: rng.next_u64() >> 8,
            }),
        })),
        4 => WireResponse::Serve(ServeResponse::Budget {
            spent_mj: random_f64(rng),
            remaining_mj: rng.chance(0.5).then(|| random_f64(rng)),
        }),
        5 => WireResponse::Error(random_error(rng)),
        6 => {
            let len = rng.below(96);
            let mut snapshot = vec![0u8; len];
            rng.fill_bytes(&mut snapshot);
            WireResponse::Repl(ReplEvent::Full { seq: rng.next_u64() >> 8, snapshot })
        }
        _ => WireResponse::Repl(ReplEvent::Delta {
            seq: rng.next_u64() >> 8,
            total_classes: rng.below(256) as u64,
            updates: (0..rng.below(5))
                .map(|_| {
                    let dim = 1 + rng.below(16);
                    (
                        rng.below(512) as u64,
                        (0..dim).map(|_| random_f32(rng)).collect(),
                    )
                })
                .collect(),
        }),
    }
}

// ---------------------------------------------------------------------------
// Round-trip identity
// ---------------------------------------------------------------------------

/// Debug formatting is the equality witness: it prints floats exactly enough
/// to distinguish NaN payload bits… not quite — so NaN-carrying values are
/// additionally compared structurally where it matters (tensor bits below).
#[test]
fn random_requests_roundtrip_identically() {
    let mut rng = SeedRng::new(0x51_1CE0);
    for i in 0..300 {
        let request = random_request(&mut rng);
        let frame = encode_request(&request);
        let (kind, payload) =
            parse_frame(&frame, DEFAULT_MAX_PAYLOAD).unwrap_or_else(|e| panic!("iter {i}: {e}"));
        let back = decode_request(kind, payload).unwrap_or_else(|e| panic!("iter {i}: {e}"));
        assert_eq!(
            format!("{back:?}"),
            format!("{request:?}"),
            "iteration {i} round trip differs"
        );
        // Bit-exactness of tensor payloads (Debug can collapse NaN kinds).
        if let (
            WireRequest::Serve(ServeRequest::Infer { image: a, .. }),
            WireRequest::Serve(ServeRequest::Infer { image: b, .. }),
        ) = (&request, &back)
        {
            assert_eq!(a.dims(), b.dims());
            assert!(a
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }
}

#[test]
fn random_responses_roundtrip_identically() {
    let mut rng = SeedRng::new(0xCAB1E);
    for i in 0..300 {
        let response = random_response(&mut rng);
        let frame = encode_response(&response);
        let (kind, payload) =
            parse_frame(&frame, DEFAULT_MAX_PAYLOAD).unwrap_or_else(|e| panic!("iter {i}: {e}"));
        let back = decode_response(kind, payload).unwrap_or_else(|e| panic!("iter {i}: {e}"));
        assert_eq!(
            format!("{back:?}"),
            format!("{response:?}"),
            "iteration {i} round trip differs"
        );
    }
}

// ---------------------------------------------------------------------------
// Corruption
// ---------------------------------------------------------------------------

/// Decoding a frame buffer must yield `Ok` or a typed error — never a panic.
/// Returns whether it decoded.
fn try_decode(bytes: &[u8]) -> bool {
    match parse_frame(bytes, DEFAULT_MAX_PAYLOAD) {
        Ok((kind, payload)) => {
            // Feed both decoders; either may legitimately succeed or fail,
            // but neither may panic.
            let _ = decode_request(kind, payload);
            let _ = decode_response(kind, payload);
            true
        }
        Err(_) => false,
    }
}

#[test]
fn every_single_byte_flip_is_detected() {
    let mut rng = SeedRng::new(0xF11);
    for _ in 0..20 {
        let frame = if rng.chance(0.5) {
            encode_request(&random_request(&mut rng))
        } else {
            encode_response(&random_response(&mut rng))
        };
        for index in 0..frame.len() {
            let mut damaged = frame.clone();
            damaged[index] ^= 1 << rng.below(8);
            if damaged[index] == frame[index] {
                continue;
            }
            // Every byte of the frame is covered by the checksum (or *is*
            // the checksum), so any flip must surface as a frame error.
            assert!(
                parse_frame(&damaged, DEFAULT_MAX_PAYLOAD).is_err(),
                "flip at byte {index} went unnoticed"
            );
        }
    }
}

#[test]
fn every_truncation_length_is_detected() {
    let mut rng = SeedRng::new(0x7A11);
    for _ in 0..10 {
        let frame = encode_request(&random_request(&mut rng));
        for len in 0..frame.len() {
            assert!(
                matches!(
                    parse_frame(&frame[..len], DEFAULT_MAX_PAYLOAD),
                    Err(FrameError::Truncated { .. })
                ),
                "truncation to {len} of {} not flagged",
                frame.len()
            );
        }
        // Trailing garbage is equally typed.
        let mut extended = frame.clone();
        extended.extend_from_slice(b"junk");
        assert!(matches!(
            parse_frame(&extended, DEFAULT_MAX_PAYLOAD),
            Err(FrameError::TrailingBytes { remaining: 4 })
        ));
    }
}

#[test]
fn unknown_versions_and_kinds_are_typed() {
    let frame = encode_request(&WireRequest::Subscribe { deployment: "t".into() });

    let mut versioned = frame.clone();
    versioned[4] = 0xfe;
    versioned[5] = 0xca;
    assert!(matches!(
        parse_frame(&versioned, DEFAULT_MAX_PAYLOAD),
        Err(FrameError::UnsupportedVersion(0xcafe))
    ));

    // A frame with a fabricated kind passes the frame layer (rebuild the
    // checksum) and must fail typed at the message layer.
    let (_, payload) = parse_frame(&frame, DEFAULT_MAX_PAYLOAD).unwrap();
    let forged = frame_bytes(0x3f, payload);
    let (kind, payload) = parse_frame(&forged, DEFAULT_MAX_PAYLOAD).unwrap();
    assert!(matches!(
        decode_request(kind, payload),
        Err(PayloadError::UnknownKind(0x3f))
    ));
    assert!(matches!(
        decode_response(kind, payload),
        Err(PayloadError::UnknownKind(0x3f))
    ));
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = SeedRng::new(0xBAD);
    for _ in 0..500 {
        let len = rng.below(160);
        let mut bytes = vec![0u8; len];
        rng.fill_bytes(&mut bytes);
        try_decode(&bytes);
    }
    // Garbage that *starts* like a real frame exercises the deeper paths.
    let mut rng = SeedRng::new(0xBAD2);
    for _ in 0..200 {
        let mut frame = encode_request(&random_request(&mut rng));
        let start = rng.below(frame.len());
        for byte in frame.iter_mut().skip(start) {
            *byte = (rng.next_u32() & 0xff) as u8;
        }
        try_decode(&frame);
    }
}

#[test]
fn payload_corruption_behind_a_valid_checksum_is_typed() {
    // Damage the payload, then recompute the frame around it so the frame
    // layer accepts it — the message layer must still answer with a typed
    // error for structurally broken bodies.
    let mut rng = SeedRng::new(0x900D);
    let mut flagged = 0usize;
    for _ in 0..200 {
        let frame = encode_request(&random_request(&mut rng));
        let (kind, payload) = parse_frame(&frame, DEFAULT_MAX_PAYLOAD).unwrap();
        let mut payload = payload.to_vec();
        if payload.is_empty() {
            continue;
        }
        let index = rng.below(payload.len());
        payload[index] ^= 1 << rng.below(8);
        let reframed = frame_bytes(kind, &payload);
        let (kind, payload) = parse_frame(&reframed, DEFAULT_MAX_PAYLOAD).unwrap();
        // May still decode (a float bit changed) — must never panic.
        if decode_request(kind, payload).is_err() {
            flagged += 1;
        }
    }
    // Plenty of flips hit structure (lengths, tags) and get flagged.
    assert!(flagged > 0, "no structural corruption was ever detected");
}
