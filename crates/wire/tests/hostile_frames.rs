//! Byzantine-client fuzz suite: seeded random mutations of valid frames
//! against the codec, a live `WireServer`, and a live `RouterServer`.
//!
//! The contract under test: hostile bytes must yield **typed**
//! `FrameError`/`PayloadError` outcomes — never a panic, never a hang,
//! never an allocation sized by an attacker-controlled length field — and a
//! server that just ate a barrage of garbage must still answer the next
//! well-behaved client correctly.

use std::io::{Cursor, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use ofscil_core::OFscilModel;
use ofscil_nn::models::BackboneKind;
use ofscil_router::harness::ShardProcess;
use ofscil_router::{RouterConfig, RouterServer};
use ofscil_serve::{
    DeploymentExport, DeploymentSpec, LearnerRegistry, ServeRequest, ServeResponse,
};
use ofscil_tensor::SeedRng;
use ofscil_wire::codec::{decode_request, decode_response, encode_request, WireRequest};
use ofscil_wire::frame::{frame_bytes, parse_frame, CHECKSUM_LEN, HEADER_LEN};
use ofscil_wire::{
    BoundAddr, FrameError, WireClient, WireConfig, WireResponse, WireServer,
    DEFAULT_MAX_PAYLOAD,
};

const IMAGE: usize = 8;

fn registry_with(names: &[&str]) -> LearnerRegistry {
    let registry = LearnerRegistry::new();
    for name in names {
        let mut rng = SeedRng::new(11);
        registry
            .register(
                DeploymentSpec::new(name, (IMAGE, IMAGE)),
                OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
            )
            .unwrap();
    }
    registry
}

/// Valid frames covering every request shape a client can emit.
fn templates() -> Vec<Vec<u8>> {
    vec![
        encode_request(&WireRequest::Serve(ServeRequest::Infer {
            deployment: "tenant".into(),
            image: ofscil_serve::traffic::class_image(IMAGE, 1, 0.0),
        })),
        encode_request(&WireRequest::Serve(ServeRequest::LearnOnline {
            deployment: "tenant".into(),
            batch: ofscil_serve::traffic::support_batch(IMAGE, &[0, 2], 2),
        })),
        encode_request(&WireRequest::Serve(ServeRequest::Snapshot {
            deployment: "tenant".into(),
        })),
        encode_request(&WireRequest::Serve(ServeRequest::Stats {
            deployment: "tenant".into(),
        })),
        encode_request(&WireRequest::Serve(ServeRequest::TopUpBudget {
            deployment: "tenant".into(),
            energy_mj: 3.5,
        })),
        encode_request(&WireRequest::Subscribe { deployment: "tenant".into() }),
        encode_request(&WireRequest::Export { deployment: "tenant".into() }),
        encode_request(&WireRequest::Import(DeploymentExport {
            name: "tenant".into(),
            seq: 9,
            snapshot: vec![1, 2, 3, 4],
            ..DeploymentExport::default()
        })),
        encode_request(&WireRequest::ReAnchor { deployment: "tenant".into() }),
    ]
}

/// A seeded mutation that is guaranteed to break the frame. The trailing
/// checksum covers every preceding byte (header included), so any single
/// bit flip is detectable; the one mutation deliberately absent is a pure
/// append, because a valid frame plus trailing garbage still serves its
/// prefix.
fn breaking_mutation(frame: &[u8], rng: &mut SeedRng) -> Vec<u8> {
    let mut bytes = frame.to_vec();
    match rng.below(5) {
        0 => {
            // Bit flip anywhere: header flips fail validation or the
            // checksum, payload/checksum flips fail the checksum.
            let byte = rng.below(bytes.len());
            bytes[byte] ^= 1 << rng.below(8);
        }
        1 => {
            // Truncate mid-frame.
            bytes.truncate(1 + rng.below(bytes.len() - 1));
        }
        2 => {
            // Tamper with the declared payload length.
            let fake = rng.next_u32();
            bytes[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&fake.to_le_bytes());
        }
        3 => {
            // Unsupported protocol version.
            bytes[4] ^= 0x40;
        }
        _ => {
            // Corrupt the stored checksum.
            let len = bytes.len();
            bytes[len - 1] ^= 0xff;
        }
    }
    bytes
}

/// Pure codec fuzz: thousands of seeded mutations (including kind-byte
/// flips and trailing extensions, which can leave the envelope valid) must
/// produce either a typed parse error or a frame whose payload decode is
/// itself total — never a panic.
#[test]
fn seeded_mutations_yield_typed_errors_never_panics() {
    let templates = templates();
    let mut rng = SeedRng::new(0xf0a2);
    let mut parse_errors = 0u64;
    let mut payload_errors = 0u64;
    let mut survivors = 0u64;
    for _ in 0..4_000 {
        let template = &templates[rng.below(templates.len())];
        let mut bytes = template.clone();
        // Unrestricted mutation set for the pure parser: any byte (kind
        // included), plus extension, plus multi-byte splices.
        match rng.below(4) {
            0 => {
                let byte = rng.below(bytes.len());
                bytes[byte] ^= 1 << rng.below(8);
            }
            1 => bytes.truncate(rng.below(bytes.len())),
            2 => {
                for _ in 0..1 + rng.below(8) {
                    bytes.push(rng.next_u32() as u8);
                }
            }
            _ => {
                let at = rng.below(bytes.len());
                let mut splice = [0u8; 4];
                rng.fill_bytes(&mut splice);
                let end = (at + 4).min(bytes.len());
                bytes[at..end].copy_from_slice(&splice[..end - at]);
            }
        }
        if bytes == *template {
            continue; // the mutation was a no-op; nothing hostile to assert
        }
        match parse_frame(&bytes, DEFAULT_MAX_PAYLOAD) {
            Err(_) => parse_errors += 1,
            Ok((kind, payload)) => match decode_request(kind, payload) {
                Err(_) => payload_errors += 1,
                Ok(_) => survivors += 1,
            },
        }
    }
    // Deterministic kind sweep: every kind byte against every template's
    // payload, re-framed so the envelope (checksum included) is valid. This
    // models the strongest byzantine client — one that speaks the framing
    // protocol perfectly but lies about what the payload encodes — and
    // exercises the payload decoder across all kind/payload mismatches.
    for template in &templates {
        let (_, payload) = parse_frame(template, DEFAULT_MAX_PAYLOAD).unwrap();
        for kind in 0..=u8::MAX {
            let reframed = frame_bytes(kind, payload);
            let (kind, payload) = parse_frame(&reframed, DEFAULT_MAX_PAYLOAD).unwrap();
            match decode_request(kind, payload) {
                Err(_) => payload_errors += 1,
                Ok(_) => survivors += 1,
            }
        }
    }
    // The overwhelming majority of random mutations must be caught at the
    // frame layer; payload-level rejects cover the kind sweep. "Survivors"
    // are mutations that produced a *well-formed* request (e.g. the
    // original kind back, or a kind flip between two string-only requests)
    // — legal, but they must stay a small minority.
    assert!(parse_errors > 3_000, "only {parse_errors} frame-level rejections");
    assert!(payload_errors > 2_000, "only {payload_errors} typed payload rejections");
    assert!(
        survivors < 100,
        "{survivors} mutations decoded cleanly — the mutation set is too weak"
    );
}

/// Attacker-controlled length fields must be rejected by arithmetic on the
/// declared size — before any buffer of that size exists.
#[test]
fn declared_length_attacks_are_rejected_before_allocation() {
    let stats = encode_request(&WireRequest::Serve(ServeRequest::Stats {
        deployment: "tenant".into(),
    }));
    // Claim a 4 GiB payload on an otherwise valid frame.
    let mut huge = stats.clone();
    huge[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        parse_frame(&huge, DEFAULT_MAX_PAYLOAD),
        Err(FrameError::Oversize { .. })
    ));
    // Same attack through the streaming reader: it must fail on the header,
    // not try to buffer the declared length.
    let mut cursor = Cursor::new(huge.clone());
    assert!(matches!(
        ofscil_wire::frame::read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD, None),
        Err(ofscil_wire::WireError::Frame(FrameError::Oversize { .. }))
    ));
    // One past the configured cap is still over the cap.
    let cap = 1 << 10;
    let mut just_over = stats;
    just_over[HEADER_LEN - 4..HEADER_LEN]
        .copy_from_slice(&((cap as u32) + 1).to_le_bytes());
    assert!(matches!(
        parse_frame(&just_over, cap),
        Err(FrameError::Oversize { .. })
    ));
}

/// A valid envelope around a corrupted payload must fail in the typed
/// payload decoder, never in a panic — the server's keep-serving error path.
#[test]
fn corrupted_payloads_inside_valid_envelopes_decode_totally() {
    let templates = templates();
    let mut rng = SeedRng::new(0xbeef);
    let mut rejects = 0u64;
    for _ in 0..1_000 {
        let template = &templates[rng.below(templates.len())];
        let (kind, payload) = parse_frame(template, DEFAULT_MAX_PAYLOAD).unwrap();
        let mut corrupt = payload.to_vec();
        match rng.below(3) {
            0 if !corrupt.is_empty() => {
                let byte = rng.below(corrupt.len());
                corrupt[byte] ^= 1 << rng.below(8);
            }
            1 => corrupt.truncate(rng.below(corrupt.len().max(1))),
            _ => {
                for _ in 0..1 + rng.below(6) {
                    corrupt.push(rng.next_u32() as u8);
                }
            }
        }
        // Re-frame so the envelope (length + checksum) is valid again: the
        // corruption now has to be caught by the payload decoder itself.
        let reframed = frame_bytes(kind, &corrupt);
        let (kind, payload) = parse_frame(&reframed, DEFAULT_MAX_PAYLOAD).unwrap();
        if decode_request(kind, payload).is_err() {
            rejects += 1;
        }
    }
    assert!(rejects > 500, "only {rejects} typed payload rejections");
}

/// Drives one hostile blob at a live server socket. Returns the decoded
/// response frames (empty when the server just closed the connection).
/// Every complete frame that comes back must decode — a server replying
/// with garbage is as broken as one that crashes.
fn deliver(addr: &std::net::SocketAddr, blob: &[u8]) -> Vec<WireResponse> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    // Write errors are expected: the server may slam the connection after
    // the first corrupt bytes.
    let _ = stream.write_all(blob);
    let _ = stream.shutdown(Shutdown::Write);
    let mut raw = Vec::new();
    let _ = stream.read_to_end(&mut raw);
    let mut responses = Vec::new();
    let mut rest = &raw[..];
    while !rest.is_empty() {
        let Ok((kind, payload)) = parse_frame(rest, DEFAULT_MAX_PAYLOAD) else {
            // A partial final frame (server closed mid-write) is fine.
            break;
        };
        responses.push(decode_response(kind, payload).expect("server sent undecodable frame"));
        let consumed = HEADER_LEN + payload.len() + CHECKSUM_LEN;
        rest = &rest[consumed..];
    }
    responses
}

fn hostile_barrage(addr: &BoundAddr, seed: u64, frames: usize) {
    let BoundAddr::Tcp(addr) = addr else {
        panic!("hostile barrage needs a TCP address");
    };
    let templates = templates();
    let mut rng = SeedRng::new(seed);
    for _ in 0..frames {
        let template = &templates[rng.below(templates.len())];
        let blob = breaking_mutation(template, &mut rng);
        if blob == *template {
            continue;
        }
        for response in deliver(addr, &blob) {
            assert!(
                matches!(response, WireResponse::Error(_)),
                "hostile frame elicited a successful response: {response:?}"
            );
        }
    }
}

/// A `WireServer` under a hostile barrage: every mutated frame is rejected
/// (connection closed or typed error reply), and the same socket then
/// serves a well-behaved client with correct predictions.
#[test]
fn wire_server_rejects_hostile_frames_and_keeps_serving() {
    let registry = registry_with(&["tenant"]);
    WireServer::run(&registry, &WireConfig::tcp_loopback(), |server| {
        let mut client = WireClient::connect(server.addr()).unwrap();
        client
            .call(ServeRequest::LearnOnline {
                deployment: "tenant".into(),
                batch: ofscil_serve::traffic::support_batch(IMAGE, &[0, 1, 2], 3),
            })
            .unwrap();

        hostile_barrage(server.addr(), 0x5eed_0001, 60);

        // The barrage must not have leaked into the accepted counters…
        let stats = registry.stats("tenant").unwrap();
        assert_eq!(stats.accepted(), 1, "only the seeding learn was accepted");
        // …and the server still answers a fresh client correctly.
        let mut fresh = WireClient::connect(server.addr()).unwrap();
        match fresh
            .call(ServeRequest::Infer {
                deployment: "tenant".into(),
                image: ofscil_serve::traffic::class_image(IMAGE, 2, 0.01),
            })
            .unwrap()
        {
            ServeResponse::Prediction { class, .. } => assert_eq!(class, 2),
            other => panic!("unexpected response {other:?}"),
        }
    })
    .unwrap();
}

/// The router's forwarding path under the same barrage: hostile frames die
/// at the routing hop (or come back as typed errors), shards never see
/// them, and routed traffic keeps working.
#[test]
fn router_rejects_hostile_frames_and_keeps_serving() {
    let shard_registry = Arc::new(registry_with(&["tenant"]));
    let shard =
        ShardProcess::spawn(Arc::clone(&shard_registry), WireConfig::tcp_loopback()).unwrap();
    let config =
        RouterConfig::tcp_loopback(vec![shard.addr().clone()]).with_deployments(&["tenant"]);
    RouterServer::run(&config, |router| {
        let mut client = WireClient::connect(router.addr()).unwrap();
        client
            .call(ServeRequest::LearnOnline {
                deployment: "tenant".into(),
                batch: ofscil_serve::traffic::support_batch(IMAGE, &[0, 1, 2], 3),
            })
            .unwrap();

        hostile_barrage(router.addr(), 0x5eed_0002, 60);

        // Nothing hostile reached the shard's admission path.
        let stats = shard_registry.stats("tenant").unwrap();
        assert_eq!(stats.accepted(), 1, "only the seeding learn was accepted");
        assert_eq!(stats.rejected(), 0);
        // Routed traffic still works on the same router address.
        match client
            .call(ServeRequest::Infer {
                deployment: "tenant".into(),
                image: ofscil_serve::traffic::class_image(IMAGE, 0, 0.01),
            })
            .unwrap()
        {
            ServeResponse::Prediction { class, .. } => assert_eq!(class, 0),
            other => panic!("unexpected response {other:?}"),
        }
    })
    .unwrap();
    shard.stop();
}
