//! Socket loopback coverage: a real `WireServer` on an ephemeral port, real
//! `WireClient`s, every request variant and the typed error path end to end.

use ofscil_core::OFscilModel;
use ofscil_nn::models::BackboneKind;
use ofscil_serve::{
    BudgetPolicy, DeploymentSpec, LearnerRegistry, ServeError, ServeRequest, ServeResponse,
};
use ofscil_tensor::{SeedRng, Tensor};
use ofscil_wire::{WireClient, WireConfig, WireError, WireServer};

const IMAGE: usize = 8;

fn registry_with(names: &[&str]) -> LearnerRegistry {
    let registry = LearnerRegistry::new();
    for (i, name) in names.iter().enumerate() {
        let mut rng = SeedRng::new(i as u64);
        registry
            .register(
                DeploymentSpec::new(name, (IMAGE, IMAGE)),
                OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
            )
            .unwrap();
    }
    registry
}

#[test]
fn full_request_surface_over_tcp() {
    let registry = registry_with(&["tenant"]);
    WireServer::run(&registry, &WireConfig::tcp_loopback(), |server| {
        let mut client = WireClient::connect(server.addr()).unwrap();

        // Learn, then infer — the same typed API as the in-process client.
        let learned = client
            .call(ServeRequest::LearnOnline {
                deployment: "tenant".into(),
                batch: ofscil_serve::traffic::support_batch(IMAGE, &[0, 1, 2], 3),
            })
            .unwrap();
        match learned {
            ServeResponse::Learned { classes, total_classes } => {
                assert_eq!(classes, vec![0, 1, 2]);
                assert_eq!(total_classes, 3);
            }
            other => panic!("unexpected response {other:?}"),
        }
        let prediction = client
            .call(ServeRequest::Infer {
                deployment: "tenant".into(),
                image: ofscil_serve::traffic::class_image(IMAGE, 1, 0.02),
            })
            .unwrap();
        match prediction {
            ServeResponse::Prediction { class, .. } => assert_eq!(class, 1),
            other => panic!("unexpected response {other:?}"),
        }

        // Stats and snapshot flow through unchanged.
        match client.call(ServeRequest::Stats { deployment: "tenant".into() }).unwrap() {
            ServeResponse::Stats(stats) => {
                assert_eq!(stats.classes, 3);
                assert_eq!(stats.learn_requests, 1);
            }
            other => panic!("unexpected response {other:?}"),
        }
        match client.call(ServeRequest::Snapshot { deployment: "tenant".into() }).unwrap() {
            ServeResponse::Snapshot { bytes } => {
                assert_eq!(bytes, registry.snapshot("tenant").unwrap());
            }
            other => panic!("unexpected response {other:?}"),
        }

        // Typed errors survive the wire.
        let err = client
            .call(ServeRequest::Infer {
                deployment: "ghost".into(),
                image: Tensor::zeros(&[3, IMAGE, IMAGE]),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            WireError::Remote(ServeError::UnknownDeployment(ref name)) if name == "ghost"
        ));
        let err = client
            .call(ServeRequest::Infer {
                deployment: "tenant".into(),
                image: Tensor::zeros(&[3, 4, 4]),
            })
            .unwrap_err();
        assert!(matches!(err, WireError::Remote(ServeError::InvalidRequest(_))));

        // The connection survives the errors; several clients at once work.
        let mut second = WireClient::connect(server.addr()).unwrap();
        second.call(ServeRequest::Stats { deployment: "tenant".into() }).unwrap();
        client.call(ServeRequest::Stats { deployment: "tenant".into() }).unwrap();
    })
    .unwrap();
}

#[test]
fn budget_errors_cross_the_wire_typed() {
    let registry = LearnerRegistry::new();
    let mut rng = SeedRng::new(0);
    registry
        .register(
            DeploymentSpec::new("metered", (IMAGE, IMAGE))
                .with_energy_budget(0.0, BudgetPolicy::Reject),
            OFscilModel::new(BackboneKind::Micro, 16, &mut rng),
        )
        .unwrap();
    WireServer::run(&registry, &WireConfig::tcp_loopback(), |server| {
        let mut client = WireClient::connect(server.addr()).unwrap();
        let err = client
            .call(ServeRequest::Infer {
                deployment: "metered".into(),
                image: Tensor::zeros(&[3, IMAGE, IMAGE]),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            WireError::Remote(ServeError::BudgetExhausted { .. })
        ));
        // Top up over the wire, then the request is admitted (and fails
        // only because the memory is empty — an execution error).
        client
            .call(ServeRequest::TopUpBudget { deployment: "metered".into(), energy_mj: 1e6 })
            .unwrap();
        let err = client
            .call(ServeRequest::Infer {
                deployment: "metered".into(),
                image: Tensor::zeros(&[3, IMAGE, IMAGE]),
            })
            .unwrap_err();
        assert!(matches!(err, WireError::Remote(ServeError::Execution(_))));
    })
    .unwrap();
}

#[cfg(unix)]
#[test]
fn unix_domain_sockets_serve_the_same_protocol() {
    use ofscil_wire::WireBind;
    let dir = std::env::temp_dir().join(format!("ofscil-wire-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serve.sock");
    let registry = registry_with(&["tenant"]);
    let config = WireConfig::tcp_loopback().with_bind(WireBind::Unix(path.clone()));
    WireServer::run(&registry, &config, |server| {
        let mut client = WireClient::connect(server.addr()).unwrap();
        client
            .call(ServeRequest::LearnOnline {
                deployment: "tenant".into(),
                batch: ofscil_serve::traffic::support_batch(IMAGE, &[4], 2),
            })
            .unwrap();
        match client.call(ServeRequest::Stats { deployment: "tenant".into() }).unwrap() {
            ServeResponse::Stats(stats) => assert_eq!(stats.classes, 1),
            other => panic!("unexpected response {other:?}"),
        }
    })
    .unwrap();
    // The socket file is cleaned up at shutdown.
    assert!(!path.exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn subscribe_to_unknown_deployment_is_a_typed_remote_error() {
    let registry = registry_with(&["tenant"]);
    WireServer::run(&registry, &WireConfig::tcp_loopback(), |server| {
        let client = WireClient::connect(server.addr()).unwrap();
        let mut stream = client.subscribe("ghost").unwrap();
        let err = stream.next_event(None).unwrap_err();
        assert!(matches!(
            err,
            WireError::Remote(ServeError::UnknownDeployment(ref name)) if name == "ghost"
        ));
    })
    .unwrap();
}
