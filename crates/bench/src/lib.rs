//! Shared helpers for the benchmark harness that regenerates every table and
//! figure of the paper.
//!
//! Each table/figure has a dedicated binary (`table1_backbones`,
//! `table2_fscil_accuracy`, `table3_ablation`, `table4_energy`,
//! `fig2_parallel_scaling`, `fig3_precision_sweep`) that prints the
//! reproduced rows next to the paper's reference values, plus Criterion
//! micro-benchmarks for the performance-critical kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ofscil::prelude::*;

/// Returns the experiment seed, overridable with the `OFSCIL_SEED`
/// environment variable. An unset variable silently uses the default seed
/// 42; a *set but unparsable* value falls back too, but warns on stderr
/// naming the bad value so a typoed override is never mistaken for a real
/// one.
pub fn seed_from_env() -> u64 {
    match std::env::var("OFSCIL_SEED") {
        Ok(raw) => match raw.parse() {
            Ok(seed) => seed,
            Err(_) => {
                eprintln!(
                    "warning: OFSCIL_SEED={raw:?} is not a valid u64 seed; using default 42"
                );
                42
            }
        },
        Err(_) => 42,
    }
}

/// Returns `true` when the `OFSCIL_PROFILE=full` environment variable asks
/// for the paper-scale configuration instead of the laptop-scale default.
pub fn full_profile_requested() -> bool {
    std::env::var("OFSCIL_PROFILE")
        .map(|v| v.eq_ignore_ascii_case("full"))
        .unwrap_or(false)
}

/// Builds the experiment configuration used by the accuracy benchmarks:
/// the micro profile by default, the paper-scale profile when
/// `OFSCIL_PROFILE=full`.
pub fn benchmark_config(seed: u64) -> ExperimentConfig {
    if full_profile_requested() {
        ExperimentConfig::full(seed, BackboneKind::MobileNetV2X4)
    } else {
        ExperimentConfig::micro(seed)
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(value: f32) -> String {
    format!("{:6.2}", 100.0 * value)
}

/// Prints a horizontal rule of the given width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_parsing_and_fallback() {
        // All OFSCIL_SEED handling lives in one test: the variable is
        // process-global, so splitting these cases across tests would race
        // under the parallel test harness.
        let previous = std::env::var("OFSCIL_SEED").ok();
        if previous.is_none() {
            assert_eq!(seed_from_env(), 42);
        }
        std::env::set_var("OFSCIL_SEED", "not-a-number");
        assert_eq!(seed_from_env(), 42);
        std::env::set_var("OFSCIL_SEED", "7");
        assert_eq!(seed_from_env(), 7);
        match previous {
            Some(value) => std::env::set_var("OFSCIL_SEED", value),
            None => std::env::remove_var("OFSCIL_SEED"),
        }
    }

    #[test]
    fn benchmark_config_is_valid() {
        let config = benchmark_config(1);
        config.validate().unwrap();
    }

    #[test]
    fn pct_formats_two_decimals() {
        assert_eq!(pct(0.5), " 50.00");
        assert_eq!(pct(1.0), "100.00");
    }
}
