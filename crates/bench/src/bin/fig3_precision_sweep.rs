//! Regenerates **Fig. 3**: the impact of the explicit-memory representation
//! precision on accuracy (session 0 and the final session) together with the
//! memory requirement for 100 class prototypes.
//!
//! ```text
//! cargo run --release -p ofscil_bench --bin fig3_precision_sweep
//! ```

use ofscil::prelude::*;
use ofscil_bench::{benchmark_config, pct, rule, seed_from_env};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let seed = seed_from_env();
    let config = benchmark_config(seed);
    println!("Fig. 3 — prototype precision vs accuracy and memory (seed {seed})");
    println!("paper reference (MobileNetV2 x4, d_p = 256, 100 classes): accuracy flat from 32-bit down to 3-bit,");
    println!("                9.6 kB at 3 bits; visible degradation only at 1-2 bits.");

    let outcome = run_experiment(&config)?;
    let mut model = outcome.model;
    let benchmark = outcome.benchmark;
    let session0_test = benchmark.test_after_session(0)?;
    let last_test = benchmark.test_after_session(benchmark.config().num_sessions)?;

    rule(86);
    println!(
        "{:>6} {:>14} {:>16} {:>18} {:>18}",
        "bits", "session 0 [%]", "last session [%]", "EM this run [kB]", "EM paper-scale [kB]"
    );
    rule(86);
    for precision in PrototypePrecision::figure3_sweep() {
        model.set_prototype_precision(precision);
        let acc0 = model.evaluate(&session0_test, 64)?;
        let acc_last = model.evaluate(&last_test, 64)?;
        let this_run = ExplicitMemoryFootprint::new(
            benchmark.config().total_classes(),
            model.projection_dim(),
            precision.bits(),
        );
        let paper_scale = ExplicitMemoryFootprint::new(100, 256, precision.bits());
        println!(
            "{:>6} {:>14} {:>16} {:>18.2} {:>18.1}",
            precision.bits(),
            pct(acc0),
            pct(acc_last),
            this_run.kilobytes(),
            paper_scale.kilobytes()
        );
    }
    rule(86);
    Ok(())
}
