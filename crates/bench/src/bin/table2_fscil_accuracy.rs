//! Regenerates **Table II**: per-session FSCIL accuracy for O-FSCIL (FP32,
//! INT8, and with optional FCR fine-tuning) and for the baseline classifier
//! heads, on the shared synthetic protocol.
//!
//! Absolute accuracies are not comparable to the paper (synthetic data, micro
//! training profile), but the *structure* is: per-session degradation, the
//! FP32/INT8 parity, the small effect of fine-tuning and the ordering against
//! the baseline heads. Set `OFSCIL_PROFILE=full` for the paper-scale
//! configuration (hours of runtime with the pure-Rust engine).
//!
//! ```text
//! cargo run --release -p ofscil_bench --bin table2_fscil_accuracy
//! ```

use ofscil::prelude::*;
use ofscil_bench::{benchmark_config, rule, seed_from_env};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let seed = seed_from_env();
    let config = benchmark_config(seed);
    println!(
        "Table II — FSCIL accuracy per session (seed {seed}, {} base classes, {} x {}-way {}-shot)",
        config.fscil.num_base_classes, config.fscil.num_sessions, config.fscil.ways, config.fscil.shots
    );
    println!("paper reference (CIFAR100, MobileNetV2 x4): FP32 avg 66.54%, INT8 avg 66.51%, +FT 66.75%");
    rule(118);
    let header: Vec<String> = (0..=config.fscil.num_sessions).map(|s| format!("s{s}")).collect();
    println!("{:<34} {}   avg", "method / precision", header.join("     "));
    rule(118);

    // O-FSCIL FP32.
    let fp32 = run_experiment(&config)?;
    print_row("O-FSCIL (FP32)", &fp32.sessions);

    // O-FSCIL INT8 (simulated deployment).
    let int8 = run_experiment(&config.clone().with_precision(EvalPrecision::Int8))?;
    print_row("O-FSCIL (INT8)", &int8.sessions);

    // O-FSCIL + FCR fine-tuning.
    let ft = run_experiment(&config.clone().with_finetune(FinetuneConfig::micro()))?;
    print_row("O-FSCIL + FT (FP32)", &ft.sessions);

    // Baselines on the shared pretrained model (from the FP32 run).
    let mut model = fp32.model;
    let benchmark = fp32.benchmark;

    let mut ncm = NearestClassMean::new(SimilarityMetric::Cosine);
    let ncm_results =
        run_baseline_protocol(&mut model, &benchmark, &mut ncm, FeatureSpace::Backbone, 64)?;
    print_row("NCM on backbone features", &ncm_results);

    let mut cfscil = NearestClassMean::new(SimilarityMetric::Euclidean);
    let cfscil_results =
        run_baseline_protocol(&mut model, &benchmark, &mut cfscil, FeatureSpace::Projected, 64)?;
    print_row("C-FSCIL-style (euclidean, FCR)", &cfscil_results);

    let mut etf = EtfHead::new(
        model.projection_dim(),
        benchmark.config().total_classes(),
        seed,
    );
    let etf_results =
        run_baseline_protocol(&mut model, &benchmark, &mut etf, FeatureSpace::Projected, 64)?;
    print_row("NC-FSCIL-style ETF head", &etf_results);

    rule(118);
    println!(
        "explicit memory after the last session: {:.1} kB at {} prototypes",
        model.em().footprint().kilobytes(),
        model.em().num_classes()
    );
    Ok(())
}

fn print_row(label: &str, results: &SessionResults) {
    println!("{:<34} {}", label, results.to_row());
}
