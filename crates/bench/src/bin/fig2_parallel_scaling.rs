//! Regenerates **Fig. 2**: average MACs per cycle as a function of the number
//! of active cluster cores, for backbone inference (left panel), FCR
//! inference (centre panel) and FCR fine-tuning (right panel).
//!
//! ```text
//! cargo run --release -p ofscil_bench --bin fig2_parallel_scaling
//! ```

use ofscil::nn::models::{mobilenet_v2, MobileNetVariant};
use ofscil::prelude::*;
use ofscil_bench::rule;

fn main() {
    let executor = Gap9Executor::default();
    let cores = [1usize, 2, 4, 8];
    let mut rng = SeedRng::new(0);

    println!("Fig. 2 — MACs/cycle vs number of active cores (GAP9 model)");
    rule(72);

    // Left panel: backbone inference for the three stride profiles.
    println!("backbone inference:");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10}",
        "backbone", "1 core", "2 cores", "4 cores", "8 cores"
    );
    for variant in [
        MobileNetVariant::X1,
        MobileNetVariant::X2,
        MobileNetVariant::X4,
    ] {
        let workload = deploy_backbone(&mobilenet_v2(variant, &mut rng), 32, 32);
        let sweep = executor
            .macs_per_cycle_sweep(&workload, &cores, false)
            .expect("valid core counts");
        print_sweep(variant.label(), &sweep);
    }
    println!("(paper: MobileNetV2x4 reaches ~6.5 MACs/cycle at 8 cores; strided profiles scale worse)");
    rule(72);

    // Centre panel: FCR inference.
    println!("FCR inference (1280 -> 256):");
    let fcr = deploy_fcr(1280, 256);
    let sweep = executor
        .macs_per_cycle_sweep(&fcr, &cores, false)
        .expect("valid core counts");
    print_sweep("FCR", &sweep);
    println!("(paper: ~0.65 MACs/cycle at 8 cores — the 328 kB L3 weight transfer dominates)");
    rule(72);

    // Right panel: FCR fine-tuning (training kernels).
    println!("FCR fine-tuning (forward + backward):");
    let sweep = executor
        .macs_per_cycle_sweep(&fcr, &cores, true)
        .expect("valid core counts");
    print_sweep("FCR finetune", &sweep);
    println!("(paper: ~1.2-1.4 MACs/cycle at 8 cores)");
}

fn print_sweep(label: &str, sweep: &[(usize, f64)]) {
    let cells: Vec<String> = sweep.iter().map(|(_, m)| format!("{m:>10.2}")).collect();
    println!("{:<18} {}", label, cells.join(" "));
}
