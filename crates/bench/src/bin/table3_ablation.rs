//! Regenerates **Table III**: the component ablation — augmentation (AG),
//! orthogonality regularisation (OR), multi-margin metalearning (MM),
//! cross-entropy metalearning (CE) and incremental fine-tuning (FT) — with
//! session-0, final-session and average accuracy per variant.
//!
//! ```text
//! cargo run --release -p ofscil_bench --bin table3_ablation
//! ```

use ofscil::prelude::*;
use ofscil_bench::{benchmark_config, pct, rule, seed_from_env};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let seed = seed_from_env();
    let mut base = benchmark_config(seed);
    // The ablation repeats the whole pipeline seven times; trim the schedules
    // so the sweep completes in a few minutes on the micro profile.
    base.pretrain.epochs = base.pretrain.epochs.min(3);
    if let Some(meta) = &mut base.metalearn {
        meta.iterations = meta.iterations.min(20);
    }

    println!("Table III — component ablation (seed {seed})");
    println!("paper reference (ResNet-12, CIFAR100): baseline 62.94% -> AG+OR+MM 68.52% -> +FT 68.62% avg;");
    println!("                CE metalearning *hurts* (64.56% avg).");
    rule(86);
    println!(
        "{:<6}{:<6}{:<6}{:<6}{:<6} {:>12} {:>12} {:>12}",
        "AG", "OR", "MM", "CE", "FT", "session 0", "last sess.", "average"
    );
    rule(86);

    let variants = AblationVariant::table3_rows();
    let results = run_ablation(&base, &variants)?;
    for result in &results {
        println!(
            "{:<6}{:<6}{:<6}{:<6}{:<6} {:>12} {:>12} {:>12}",
            tick(result.variant.augmentation),
            tick(result.variant.orthogonality),
            tick(result.variant.multi_margin),
            tick(result.variant.cross_entropy),
            tick(result.variant.finetune),
            pct(result.session0),
            pct(result.last_session),
            pct(result.average)
        );
    }
    rule(86);

    // Summarise the two qualitative claims of the table.
    let by_label = |label: &str| results.iter().find(|r| r.label == label);
    if let (Some(baseline), Some(full)) = (by_label("baseline"), by_label("AG+OR+MM")) {
        println!(
            "AG+OR+MM vs baseline: {:+.2} percentage points average accuracy",
            100.0 * (full.average - baseline.average)
        );
    }
    if let (Some(mm), Some(ce)) = (by_label("AG+OR+MM"), by_label("AG+OR+CE")) {
        println!(
            "CE metalearning vs MM metalearning: {:+.2} percentage points (negative reproduces the paper's finding)",
            100.0 * (ce.average - mm.average)
        );
    }
    Ok(())
}

fn tick(enabled: bool) -> &'static str {
    if enabled {
        "x"
    } else {
        ""
    }
}
