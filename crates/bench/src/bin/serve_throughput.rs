//! Serving-runtime throughput: coalesced batching vs request-at-a-time vs
//! the socket frontend — plus a sharded-cluster mode.
//!
//! By default, drives one deployment of the serving runtime with the same
//! inference traffic three times:
//!
//! * **sequential** — `ServeConfig::sequential()` (one worker, batch cap
//!   of one) with a blocking round trip per request: the classic
//!   request-at-a-time server,
//! * **batched** — the default worker pool with coalescing enabled and the
//!   whole burst submitted up front, so the dispatcher merges concurrent
//!   requests into batched forward passes,
//! * **batched + obs** — the coalesced burst again with a columnar
//!   observability sink attached, so the per-event emission cost on the hot
//!   path is tracked release over release (`obs_overhead` in the JSON line;
//!   the sink never blocks, and the run asserts zero dropped events). This
//!   pass also reads back the store's per-kind latency histogram —
//!   `infer_p50_us` / `infer_p99_us` in the JSON line,
//! * **batched + live tail** — the observed burst once more with a
//!   streaming subscriber ([`ObsStore::subscribe`]) attached and
//!   continuously drained: what one live cluster tail costs the serving hot
//!   path (`obs_tail_overhead` vs the plain obs pass; the per-subscriber
//!   fan-out is bounded drop-and-count, and with the queue outsizing the
//!   burst the run asserts zero shed events),
//! * **batched + durable obs** — the same observed burst with sealed event
//!   chunks additionally spilling through the store record codec to disk
//!   (`obs_spill_rps` / `obs_spill_overhead` in the JSON line, measured
//!   against the in-RAM obs pass; the spill rides the collector thread, so
//!   the tracked target is a <5% regression vs in-RAM obs),
//! * **wire loopback** — the same burst through `WireServer`/`WireClient`
//!   over loopback TCP with several connections, measuring what the frame
//!   codec + socket hop cost on top of the in-process runtime (coalescing
//!   still applies across connections).
//!
//! With `--shards N`, instead drives a **sharded cluster**: N backend
//! serving processes behind the consistent-hash `ofscil_router`, several
//! tenants spread across the ring, concurrent wire clients hammering the
//! router, and one **live migration** mid-burst (asserted bit-exact via
//! snapshot equality). Emits a `shard_rps` JSON line.
//!
//! With `--durable`, instead drives a **mixed learn + infer burst** twice —
//! once in-memory, once journaled to an `ofscil_store` WAL — and emits a
//! `durable_rps` JSON line so the write-ahead log's hot-path cost is tracked
//! release over release (the recovered state is asserted bit-exact against
//! the live registry on the way out).
//!
//! Prints a human-readable table plus one machine-readable JSON line
//! (`{"bench":"serve_throughput",...}`) so successive runs can chart the
//! perf trajectory. `OFSCIL_SEED` overrides the seed; `OFSCIL_PROFILE=full`
//! scales the traffic up.

use ofscil::prelude::*;
use ofscil::router::harness::ShardProcess;
use ofscil::serve::traffic;
use ofscil_bench::{full_profile_requested, rule, seed_from_env};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

const IMAGE: usize = 8;
const MAX_BATCH: usize = 32;
const WIRE_CLIENTS: usize = 4;
const SHARDED_TENANTS: usize = 6;
/// In durable mode, one `LearnOnline` commit rides along every this many
/// inference requests — learns are what hit the write-ahead log.
const LEARN_EVERY: usize = 16;

fn class_image(class: usize, jitter: f32) -> Tensor {
    traffic::class_image(IMAGE, class, jitter)
}

fn support_batch(classes: &[usize], shots: usize) -> Batch {
    traffic::support_batch(IMAGE, classes, shots)
}

fn registry_with_tenant(seed: u64) -> LearnerRegistry {
    let mut rng = SeedRng::new(seed);
    let registry = LearnerRegistry::new();
    registry
        .register(
            DeploymentSpec::new("tenant", (IMAGE, IMAGE)),
            OFscilModel::new(BackboneKind::Micro, 32, &mut rng),
        )
        .expect("registration");
    registry
        .with_model("tenant", |model| {
            model.learn_classes_online(&support_batch(&[0, 1, 2], 5))
        })
        .expect("deployment exists")
        .expect("online learning");
    registry
}

/// Round-trips every request one at a time; returns elapsed seconds.
fn run_sequential(registry: &LearnerRegistry, requests: &[Tensor]) -> f64 {
    let config = ServeConfig::sequential();
    ServeRuntime::run(registry, &config, |client| {
        let start = Instant::now();
        for image in requests {
            client
                .call(ServeRequest::Infer { deployment: "tenant".into(), image: image.clone() })
                .expect("sequential inference");
        }
        start.elapsed().as_secs_f64()
    })
    .expect("runtime")
}

/// Submits the whole burst, then collects; returns `(elapsed seconds, mean
/// coalesced batch, largest coalesced batch)`.
fn run_batched(registry: &LearnerRegistry, requests: &[Tensor]) -> (f64, f64, usize) {
    let config = ServeConfig::default().with_max_batch(MAX_BATCH);
    let elapsed = ServeRuntime::run(registry, &config, |client| {
        let start = Instant::now();
        let pending: Vec<PendingResponse> = requests
            .iter()
            .map(|image| {
                client.submit(ServeRequest::Infer {
                    deployment: "tenant".into(),
                    image: image.clone(),
                })
            })
            .collect();
        for pending in pending {
            pending.wait().expect("batched inference");
        }
        start.elapsed().as_secs_f64()
    })
    .expect("runtime");
    let stats = registry.stats("tenant").expect("stats");
    (elapsed, stats.mean_batch(), stats.largest_batch)
}

/// The coalesced burst again with an observability sink attached; returns
/// elapsed seconds. The sink is a bounded non-blocking channel, so this
/// should stay within noise of `run_batched` — the tracked target is a
/// <5% throughput regression.
fn run_batched_observed(registry: &LearnerRegistry, requests: &[Tensor], obs: &Obs) -> f64 {
    let config = ServeConfig::default().with_max_batch(MAX_BATCH);
    ServeRuntime::run_observed(registry, &config, None, None, Some(obs.sink()), |client| {
        let start = Instant::now();
        let pending: Vec<PendingResponse> = requests
            .iter()
            .map(|image| {
                client.submit(ServeRequest::Infer {
                    deployment: "tenant".into(),
                    image: image.clone(),
                })
            })
            .collect();
        for pending in pending {
            pending.wait().expect("observed inference");
        }
        start.elapsed().as_secs_f64()
    })
    .expect("runtime")
}

/// Round-trips the burst over loopback TCP with `WIRE_CLIENTS` connections;
/// returns elapsed seconds.
fn run_wire(registry: &LearnerRegistry, requests: &[Tensor]) -> f64 {
    let config = WireConfig::tcp_loopback()
        .with_serve(ServeConfig::default().with_max_batch(MAX_BATCH));
    WireServer::run(registry, &config, |server| {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for chunk in requests.chunks(requests.len().div_ceil(WIRE_CLIENTS)) {
                let addr = server.addr().clone();
                scope.spawn(move || {
                    let mut client = WireClient::connect(&addr).expect("connect");
                    for image in chunk {
                        client
                            .call(ServeRequest::Infer {
                                deployment: "tenant".into(),
                                image: image.clone(),
                            })
                            .expect("wire inference");
                    }
                });
            }
        });
        start.elapsed().as_secs_f64()
    })
    .expect("wire server")
}

/// Submits a mixed burst (every `LEARN_EVERY`-th request is preceded by a
/// `LearnOnline` commit), optionally journaled; returns elapsed seconds.
fn run_mixed(
    registry: &LearnerRegistry,
    requests: &[Tensor],
    journal: Option<&dyn CommitJournal>,
) -> f64 {
    let config = ServeConfig::default().with_max_batch(MAX_BATCH);
    ServeRuntime::run_journaled(registry, &config, None, journal, |client| {
        let start = Instant::now();
        let pending: Vec<PendingResponse> = requests
            .iter()
            .enumerate()
            .flat_map(|(i, image)| {
                let mut batch = Vec::with_capacity(2);
                if i % LEARN_EVERY == 0 {
                    batch.push(client.submit(ServeRequest::LearnOnline {
                        deployment: "tenant".into(),
                        batch: support_batch(&[(i / LEARN_EVERY) % 3], 2),
                    }));
                }
                batch.push(client.submit(ServeRequest::Infer {
                    deployment: "tenant".into(),
                    image: image.clone(),
                }));
                batch
            })
            .collect();
        for pending in pending {
            pending.wait().expect("mixed workload");
        }
        start.elapsed().as_secs_f64()
    })
    .expect("runtime")
}

/// One journaled mixed burst under a given WAL [`SyncPolicy`]: fresh
/// registry, fresh store, warmup, timed run, bit-exact replay assertion.
/// Returns elapsed seconds.
fn run_durable_with_policy(seed: u64, requests: &[Tensor], sync: SyncPolicy, tag: &str) -> f64 {
    let mut dir = std::env::temp_dir();
    dir.push(format!("ofscil-durable-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = registry_with_tenant(seed);
    let store = Store::open_with(&dir, StoreConfig::default().with_sync_policy(sync))
        .expect("store open");
    store.bootstrap(&registry).expect("store bootstrap");
    run_mixed(&registry, &requests[..requests.len().min(32)], Some(&store));
    let elapsed = run_mixed(&registry, requests, Some(&store));
    // Group commit trades sync frequency, never correctness: every policy
    // must still replay to exactly the live state.
    let state = store.latest_state("tenant").expect("replay");
    assert_eq!(
        state.snapshot,
        registry.snapshot("tenant").expect("snapshot"),
        "recovered state diverged from the live registry under {sync:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
    elapsed
}

/// The durable-serving benchmark: the same mixed burst, in-memory vs
/// journaled to a WAL + checkpoint store, with recovery asserted bit-exact —
/// then the WAL group-commit sweep (`SyncPolicy` flush / per-record /
/// every-8 / 5 ms interval) over the identical burst.
fn run_durable(seed: u64, requests_total: usize) {
    let learns = requests_total.div_ceil(LEARN_EVERY);
    println!(
        "serve_throughput --durable: {requests_total} inference requests + {learns} \
         learn commits, one tenant, micro backbone, max_batch {MAX_BATCH} (seed {seed})"
    );
    rule(78);

    let mut rng = SeedRng::new(seed);
    let requests: Vec<Tensor> = (0..requests_total)
        .map(|i| class_image(i % 3, 0.05 * rng.normal().abs()))
        .collect();
    let total = requests_total + learns;

    let plain_registry = registry_with_tenant(seed);
    run_mixed(&plain_registry, &requests[..requests.len().min(32)], None);
    let plain_s = run_mixed(&plain_registry, &requests, None);

    let mut dir = std::env::temp_dir();
    dir.push(format!("ofscil-durable-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable_registry = registry_with_tenant(seed);
    let store = Store::open(&dir).expect("store open");
    store.bootstrap(&durable_registry).expect("store bootstrap");
    // Warm the durable path too (memoized pricing, first-learn work, the
    // WAL's file handle), so the timed ratio isolates per-record WAL cost.
    run_mixed(&durable_registry, &requests[..requests.len().min(32)], Some(&store));
    let durable_s = run_mixed(&durable_registry, &requests, Some(&store));

    // The journal must replay to exactly the live state — a throughput
    // number for a WAL that loses commits would be meaningless.
    let state = store.latest_state("tenant").expect("replay");
    assert_eq!(
        state.snapshot,
        durable_registry.snapshot("tenant").expect("snapshot"),
        "recovered state diverged from the live registry"
    );
    assert_eq!(state.seq, durable_registry.snapshot_with_seq("tenant").expect("seq").0);

    let plain_rps = total as f64 / plain_s;
    let durable_rps = total as f64 / durable_s;
    // > 1.0 means durability costs wall-clock time; the number to watch.
    let overhead = durable_s / plain_s;
    let wal = store.durability_stats("tenant").expect("attached tenant");

    // The group-commit sweep: how much durability *strength* costs. Flush
    // (OS page cache only) is the baseline the run above used; per-record
    // fsync is the upper bound; every-N and interval group commit are the
    // middle ground `SyncPolicy` exists for.
    let sweep = [
        (SyncPolicy::PerRecord, "fsync/record", "per_record"),
        (SyncPolicy::EveryN(8), "fsync/8", "every8"),
        (SyncPolicy::Interval(std::time::Duration::from_millis(5)), "fsync/5ms", "interval5ms"),
    ];
    let sweep_rps: Vec<(&str, &str, f64)> = sweep
        .iter()
        .map(|&(sync, label, key)| {
            let elapsed = run_durable_with_policy(seed, &requests, sync, key);
            (label, key, total as f64 / elapsed)
        })
        .collect();

    println!("{:<26} {:>12} {:>14}", "mode", "time [ms]", "throughput [req/s]");
    println!("{:<26} {:>12.1} {:>14.0}", "in-memory (mixed)", 1e3 * plain_s, plain_rps);
    println!("{:<26} {:>12.1} {:>14.0}", "journaled (flush)", 1e3 * durable_s, durable_rps);
    for &(label, _, rps) in &sweep_rps {
        println!("{:<26} {:>12.1} {:>14.0}", format!("journaled ({label})"), 1e3 * total as f64 / rps, rps);
    }
    rule(78);
    println!(
        "durable burst took {overhead:.2}x the in-memory time; wal_records {}, \
         wal_bytes {}, last_checkpoint_seq {}; recovery bit-exact under every sync policy",
        wal.wal_records, wal.wal_bytes, wal.last_checkpoint_seq
    );
    let sweep_json: Vec<String> = sweep_rps
        .iter()
        .map(|&(_, key, rps)| format!("\"sync_{key}_rps\":{rps:.1}"))
        .collect();
    println!(
        "{{\"bench\":\"serve_throughput\",\"mode\":\"durable\",\"seed\":{seed},\
         \"requests\":{requests_total},\"learns\":{learns},\"max_batch\":{MAX_BATCH},\
         \"plain_rps\":{plain_rps:.1},\"durable_rps\":{durable_rps:.1},\
         \"durable_overhead\":{overhead:.3},\"wal_bytes\":{},{}}}",
        wal.wal_bytes,
        sweep_json.join(",")
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Parses `--durable` from the command line.
fn durable_from_args() -> bool {
    std::env::args().skip(1).any(|arg| arg == "--durable")
}

/// Parses `--shards N` (or `--shards=N`) from the command line.
fn shards_from_args() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--shards" {
            return Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--shards needs a positive integer");
                std::process::exit(2);
            }));
        }
        if let Some(value) = arg.strip_prefix("--shards=") {
            return value.parse().ok().or_else(|| {
                eprintln!("--shards needs a positive integer, got {value:?}");
                std::process::exit(2);
            });
        }
    }
    None
}

/// A shard's registry: every tenant registered with per-tenant seeds, so all
/// shards share weights per tenant and the explicit memory is the only
/// serving state — the thing migration moves.
fn sharded_registry(seed: u64) -> Arc<LearnerRegistry> {
    let registry = LearnerRegistry::new();
    for tenant in 0..SHARDED_TENANTS {
        let mut rng = SeedRng::new(seed + tenant as u64);
        registry
            .register(
                DeploymentSpec::new(&format!("tenant-{tenant}"), (IMAGE, IMAGE)),
                OFscilModel::new(BackboneKind::Micro, 32, &mut rng),
            )
            .expect("registration");
    }
    Arc::new(registry)
}

fn router_snapshot(client: &mut WireClient, deployment: &str) -> Vec<u8> {
    match client
        .call(ServeRequest::Snapshot { deployment: deployment.into() })
        .expect("snapshot via router")
    {
        ServeResponse::Snapshot { bytes } => bytes,
        other => panic!("unexpected response {other:?}"),
    }
}

/// The sharded-cluster benchmark: N backends behind the router, a
/// concurrent burst, one live migration mid-burst.
fn run_sharded(seed: u64, shard_count: usize, requests_total: usize) {
    println!(
        "serve_throughput --shards {shard_count}: {requests_total} inference requests, \
         {SHARDED_TENANTS} tenants behind the consistent-hash router, micro backbone \
         (seed {seed})"
    );
    rule(78);

    let shards: Vec<ShardProcess> = (0..shard_count)
        .map(|_| {
            ShardProcess::spawn(sharded_registry(seed), WireConfig::tcp_loopback())
                .expect("shard boot")
        })
        .collect();
    let tenant_names: Vec<String> =
        (0..SHARDED_TENANTS).map(|t| format!("tenant-{t}")).collect();
    let tenant_refs: Vec<&str> = tenant_names.iter().map(String::as_str).collect();
    let config =
        RouterConfig::tcp_loopback(shards.iter().map(|s| s.addr().clone()).collect())
            .with_deployments(&tenant_refs);

    RouterServer::run(&config, |router| {
        let mut admin = WireClient::connect(router.addr()).expect("connect");
        for tenant in &tenant_names {
            admin
                .call(ServeRequest::LearnOnline {
                    deployment: tenant.clone(),
                    batch: traffic::support_batch(IMAGE, &[0, 1, 2], 5),
                })
                .expect("online learning via router");
        }
        // The migration witness: tenant-0's snapshot must be bit-identical
        // after moving shards mid-burst.
        let mover = &tenant_names[0];
        let before = router_snapshot(&mut admin, mover);
        let source = router.shard_for(mover).expect("placement");
        let target = (source + 1) % shard_count;

        let start = Instant::now();
        let migrated = std::thread::scope(|scope| {
            for worker in 0..WIRE_CLIENTS {
                let addr = router.addr().clone();
                let tenants = &tenant_names;
                let share = requests_total / WIRE_CLIENTS
                    + usize::from(worker < requests_total % WIRE_CLIENTS);
                scope.spawn(move || {
                    let mut client = WireClient::connect(&addr).expect("connect");
                    for i in 0..share {
                        let tenant = &tenants[(worker + i) % tenants.len()];
                        client
                            .call(ServeRequest::Infer {
                                deployment: tenant.clone(),
                                image: traffic::class_image(IMAGE, i % 3, 0.01),
                            })
                            .expect("sharded inference");
                    }
                });
            }
            // Mid-burst, live-migrate tenant-0 while the clients hammer the
            // router; routing remaps atomically under the placement lock.
            router.migrate(mover, target).expect("live migration")
        });
        let elapsed = start.elapsed().as_secs_f64();

        assert_eq!(migrated.from, source);
        assert_eq!(migrated.to, target);
        let after = router_snapshot(&mut admin, mover);
        assert_eq!(before, after, "migration must preserve snapshot bytes bit-exactly");

        let shard_rps = requests_total as f64 / elapsed;
        let slices = router.cluster_stats();
        let shard_requests: Vec<u64> = slices
            .iter()
            .map(|slice| slice.deployments.iter().map(|d| d.infer_requests).sum())
            .collect();

        println!("{:<26} {:>12} {:>14}", "mode", "time [ms]", "throughput [req/s]");
        println!(
            "{:<26} {:>12.1} {:>14.0}",
            format!("sharded ({shard_count} shards)"),
            1e3 * elapsed,
            shard_rps
        );
        rule(78);
        println!(
            "tenant {mover} migrated shard {source} -> {target} mid-burst \
             (seq {}, {} classes), snapshots bit-identical; per-shard requests {:?}",
            migrated.seq, migrated.classes, shard_requests
        );
        println!(
            "{{\"bench\":\"serve_throughput\",\"mode\":\"sharded\",\"seed\":{seed},\
             \"requests\":{requests_total},\"shards\":{shard_count},\
             \"tenants\":{SHARDED_TENANTS},\"wire_clients\":{WIRE_CLIENTS},\
             \"shard_rps\":{shard_rps:.1},\"migrations\":1,\
             \"shard_requests\":{shard_requests:?}}}"
        );
    })
    .expect("router");

    for shard in shards {
        shard.stop();
    }
}

fn main() {
    let seed = seed_from_env();
    let requests_total = if full_profile_requested() { 4096 } else { 512 };
    if durable_from_args() {
        run_durable(seed, requests_total);
        return;
    }
    if let Some(shard_count) = shards_from_args() {
        assert!(shard_count > 0, "--shards must be at least 1");
        run_sharded(seed, shard_count, requests_total);
        return;
    }
    println!(
        "serve_throughput: {requests_total} inference requests, one tenant, \
         micro backbone, max_batch {MAX_BATCH} (seed {seed})"
    );
    rule(78);

    let mut rng = SeedRng::new(seed);
    let requests: Vec<Tensor> = (0..requests_total)
        .map(|i| class_image(i % 3, 0.05 * rng.normal().abs()))
        .collect();

    // Fresh registries so each mode starts from identical state; a warmup
    // pass primes allocators and the thread pool out of the timed region.
    let sequential_registry = registry_with_tenant(seed);
    run_sequential(&sequential_registry, &requests[..requests.len().min(32)]);
    let sequential_s = run_sequential(&sequential_registry, &requests);

    let batched_registry = registry_with_tenant(seed);
    let (batched_s, mean_batch, largest_batch) = run_batched(&batched_registry, &requests);

    // The same coalesced burst with event emission on: the sink's queue is
    // sized well past the burst (warmup included) so zero drops is the only
    // acceptable outcome, and any slowdown is pure emission cost.
    let observed_registry = registry_with_tenant(seed);
    let obs = Obs::new(ObsConfig::default().with_queue_depth(4 * requests_total));
    run_batched_observed(&observed_registry, &requests[..requests.len().min(32)], &obs);
    let obs_s = run_batched_observed(&observed_registry, &requests, &obs);

    // The live-tail pass: the observed burst again with one streaming
    // subscriber registered on the store and a thread continuously draining
    // it — what a cluster tail costs serving. The fan-out is a bounded
    // `try_send` off the collector's append path, so the target is the same
    // <5% envelope as the sink itself.
    let tail_registry = registry_with_tenant(seed);
    let tail_obs = Obs::new(ObsConfig::default().with_queue_depth(4 * requests_total));
    let tail = tail_obs.store().subscribe(ObsQuery::all(), None, 4 * requests_total);
    let tail_stop = Arc::new(AtomicBool::new(false));
    let drainer = {
        let stop = Arc::clone(&tail_stop);
        std::thread::spawn(move || loop {
            match tail.recv_timeout(Duration::from_millis(5)) {
                Ok(_) => {}
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if stop.load(Ordering::Acquire) {
                        return (tail.delivered(), tail.dropped());
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return (tail.delivered(), tail.dropped());
                }
            }
        })
    };
    run_batched_observed(&tail_registry, &requests[..requests.len().min(32)], &tail_obs);
    let obs_tail_s = run_batched_observed(&tail_registry, &requests, &tail_obs);
    assert!(tail_obs.flush(Duration::from_secs(5)), "tailed obs collector failed to drain");
    tail_stop.store(true, Ordering::Release);
    let (tail_delivered, tail_dropped) = drainer.join().expect("tail drainer");

    // The durable-obs pass: the same observed burst, but sealed chunks
    // spill through the store record codec to an on-disk log as they seal.
    // Small chunks force the spill hook to fire mid-burst (not only at
    // shutdown); the spill runs on the collector thread, so any slowdown
    // measured here is queue backpressure, not hot-path I/O.
    let mut spill_dir = std::env::temp_dir();
    spill_dir.push(format!("ofscil-obs-spill-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill_dir);
    std::fs::create_dir_all(&spill_dir).expect("spill dir");
    let (spill, _) = ObsSpill::open(&spill_dir.join("obs.spill")).expect("spill open");
    let spill_registry = registry_with_tenant(seed);
    let spill_obs = Obs::new(
        ObsConfig::default().with_queue_depth(4 * requests_total).with_chunk_events(64),
    );
    spill_obs.store().set_spill(Arc::new(spill));
    run_batched_observed(&spill_registry, &requests[..requests.len().min(32)], &spill_obs);
    let obs_spill_s = run_batched_observed(&spill_registry, &requests, &spill_obs);

    let wire_registry = registry_with_tenant(seed);
    run_wire(&wire_registry, &requests[..requests.len().min(32)]);
    let wire_s = run_wire(&wire_registry, &requests);

    let sequential_rps = requests_total as f64 / sequential_s;
    let batched_rps = requests_total as f64 / batched_s;
    let obs_rps = requests_total as f64 / obs_s;
    let obs_tail_rps = requests_total as f64 / obs_tail_s;
    let obs_spill_rps = requests_total as f64 / obs_spill_s;
    let wire_rps = requests_total as f64 / wire_s;
    let speedup = batched_rps / sequential_rps;
    let obs_overhead = obs_s / batched_s;
    let obs_tail_overhead = obs_tail_s / obs_s;
    let obs_spill_overhead = obs_spill_s / obs_s;
    let wire_overhead = sequential_s / wire_s;

    // The burst's latency distribution, read back from the observed pass's
    // store the way `cluster_stats` reads it: the kind-masked log-bucketed
    // histogram, not a raw-row scan.
    assert!(obs.flush(Duration::from_secs(5)), "obs collector failed to drain");
    let infer_hist = obs
        .query(&ObsQuery::all().with_kinds(&[EventKind::Infer]).with_limit(0))
        .latency_hist;
    let infer_p50_us = infer_hist.p50_us();
    let infer_p99_us = infer_hist.p99_us();

    println!("{:<26} {:>12} {:>14}", "mode", "time [ms]", "throughput [req/s]");
    println!(
        "{:<26} {:>12.1} {:>14.0}",
        "sequential (batch=1)",
        1e3 * sequential_s,
        sequential_rps
    );
    println!(
        "{:<26} {:>12.1} {:>14.0}",
        format!("coalesced (batch<={MAX_BATCH})"),
        1e3 * batched_s,
        batched_rps
    );
    println!(
        "{:<26} {:>12.1} {:>14.0}",
        "coalesced + obs sink",
        1e3 * obs_s,
        obs_rps
    );
    println!(
        "{:<26} {:>12.1} {:>14.0}",
        "coalesced + live tail",
        1e3 * obs_tail_s,
        obs_tail_rps
    );
    println!(
        "{:<26} {:>12.1} {:>14.0}",
        "coalesced + durable obs",
        1e3 * obs_spill_s,
        obs_spill_rps
    );
    println!(
        "{:<26} {:>12.1} {:>14.0}",
        format!("wire loopback ({WIRE_CLIENTS} conns)"),
        1e3 * wire_s,
        wire_rps
    );
    rule(78);
    let obs_counters = obs.counters();
    // Drain the spill pipeline before reading its counters — the collector
    // thread may still be sealing the burst's tail.
    assert!(spill_obs.flush(Duration::from_secs(5)), "spill obs collector failed to drain");
    let spill_counters = spill_obs.counters();
    println!(
        "speedup {speedup:.2}x; coalesced batches: mean {mean_batch:.1}, largest {largest_batch}; \
         obs overhead {obs_overhead:.2}x ({} events, {} dropped); \
         infer latency p50 {infer_p50_us} us, p99 {infer_p99_us} us; \
         live tail {obs_tail_overhead:.2}x vs obs ({tail_delivered} streamed, \
         {tail_dropped} shed); \
         durable obs {obs_spill_overhead:.2}x vs in-RAM ({} chunks spilled); \
         wire vs sequential {wire_overhead:.2}x",
        obs_counters.sent, obs_counters.dropped, spill_counters.spilled_chunks
    );

    // Machine-readable trajectory line (kept grep-friendly and append-only).
    println!(
        "{{\"bench\":\"serve_throughput\",\"seed\":{seed},\"requests\":{requests_total},\
         \"max_batch\":{MAX_BATCH},\"sequential_rps\":{sequential_rps:.1},\
         \"batched_rps\":{batched_rps:.1},\"speedup\":{speedup:.3},\
         \"mean_batch\":{mean_batch:.2},\"largest_batch\":{largest_batch},\
         \"obs_rps\":{obs_rps:.1},\"obs_overhead\":{obs_overhead:.3},\
         \"infer_p50_us\":{infer_p50_us},\"infer_p99_us\":{infer_p99_us},\
         \"obs_tail_rps\":{obs_tail_rps:.1},\"obs_tail_overhead\":{obs_tail_overhead:.3},\
         \"obs_tail_delivered\":{tail_delivered},\"obs_tail_dropped\":{tail_dropped},\
         \"obs_spill_rps\":{obs_spill_rps:.1},\
         \"obs_spill_overhead\":{obs_spill_overhead:.3},\
         \"obs_spilled_chunks\":{},\
         \"wire_clients\":{WIRE_CLIENTS},\"wire_rps\":{wire_rps:.1}}}",
        spill_counters.spilled_chunks
    );

    assert!(
        speedup > 1.0,
        "coalesced batching must beat request-at-a-time (got {speedup:.3}x)"
    );
    assert_eq!(
        obs_counters.dropped, 0,
        "the non-blocking sink must not shed events when the queue outsizes the burst"
    );
    // The tracked target is <5% (`obs_overhead` in the JSON line); the hard
    // gate is deliberately looser so scheduler noise cannot fail a release.
    assert!(
        obs_overhead < 1.25,
        "observability must stay off the hot path (got {obs_overhead:.3}x over batched)"
    );
    // A live tail must ride the collector's append path for free-ish: the
    // tracked target is <5% vs the plain obs pass (`obs_tail_overhead` in
    // the JSON line), the hard gate is noise-tolerant — and with the
    // subscriber queue outsizing the burst, shedding anything is a bug.
    assert!(
        obs_tail_overhead < 1.25,
        "a live tail must stay off the hot path (got {obs_tail_overhead:.3}x over obs)"
    );
    assert!(tail_delivered > 0, "the live tail never streamed an event");
    assert_eq!(
        tail_dropped, 0,
        "the tail shed events with a queue sized past the whole burst"
    );
    assert!(
        infer_hist.total() > 0,
        "the observed pass recorded no infer latencies in the histogram"
    );
    // Durable spill: same <5% tracked target against the in-RAM obs pass,
    // same noise-tolerant hard gate — and the spill must actually have run.
    assert!(
        spill_counters.spilled_chunks > 0,
        "the durable-obs pass never spilled a chunk (chunk size vs burst mismatch)"
    );
    assert_eq!(spill_counters.dropped, 0, "the durable-obs pass shed events");
    assert!(
        obs_spill_overhead < 1.25,
        "durable spill must stay off the hot path (got {obs_spill_overhead:.3}x over in-RAM obs)"
    );
    let _ = std::fs::remove_dir_all(&spill_dir);
}
