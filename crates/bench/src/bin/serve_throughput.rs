//! Serving-runtime throughput: coalesced batching vs request-at-a-time vs
//! the socket frontend.
//!
//! Drives one deployment of the serving runtime with the same inference
//! traffic three times:
//!
//! * **sequential** — `ServeConfig::sequential()` (one worker, batch cap
//!   of one) with a blocking round trip per request: the classic
//!   request-at-a-time server,
//! * **batched** — the default worker pool with coalescing enabled and the
//!   whole burst submitted up front, so the dispatcher merges concurrent
//!   requests into batched forward passes,
//! * **wire loopback** — the same burst through `WireServer`/`WireClient`
//!   over loopback TCP with several connections, measuring what the frame
//!   codec + socket hop cost on top of the in-process runtime (coalescing
//!   still applies across connections).
//!
//! Prints a human-readable table plus one machine-readable JSON line
//! (`{"bench":"serve_throughput",...}`) so successive runs can chart the
//! perf trajectory. `OFSCIL_SEED` overrides the seed; `OFSCIL_PROFILE=full`
//! scales the traffic up.

use ofscil::prelude::*;
use ofscil::serve::traffic;
use ofscil_bench::{full_profile_requested, rule, seed_from_env};
use std::time::Instant;

const IMAGE: usize = 8;
const MAX_BATCH: usize = 32;
const WIRE_CLIENTS: usize = 4;

fn class_image(class: usize, jitter: f32) -> Tensor {
    traffic::class_image(IMAGE, class, jitter)
}

fn support_batch(classes: &[usize], shots: usize) -> Batch {
    traffic::support_batch(IMAGE, classes, shots)
}

fn registry_with_tenant(seed: u64) -> LearnerRegistry {
    let mut rng = SeedRng::new(seed);
    let registry = LearnerRegistry::new();
    registry
        .register(
            DeploymentSpec::new("tenant", (IMAGE, IMAGE)),
            OFscilModel::new(BackboneKind::Micro, 32, &mut rng),
        )
        .expect("registration");
    registry
        .with_model("tenant", |model| {
            model.learn_classes_online(&support_batch(&[0, 1, 2], 5))
        })
        .expect("deployment exists")
        .expect("online learning");
    registry
}

/// Round-trips every request one at a time; returns elapsed seconds.
fn run_sequential(registry: &LearnerRegistry, requests: &[Tensor]) -> f64 {
    let config = ServeConfig::sequential();
    ServeRuntime::run(registry, &config, |client| {
        let start = Instant::now();
        for image in requests {
            client
                .call(ServeRequest::Infer { deployment: "tenant".into(), image: image.clone() })
                .expect("sequential inference");
        }
        start.elapsed().as_secs_f64()
    })
    .expect("runtime")
}

/// Submits the whole burst, then collects; returns `(elapsed seconds, mean
/// coalesced batch, largest coalesced batch)`.
fn run_batched(registry: &LearnerRegistry, requests: &[Tensor]) -> (f64, f64, usize) {
    let config = ServeConfig::default().with_max_batch(MAX_BATCH);
    let elapsed = ServeRuntime::run(registry, &config, |client| {
        let start = Instant::now();
        let pending: Vec<PendingResponse> = requests
            .iter()
            .map(|image| {
                client.submit(ServeRequest::Infer {
                    deployment: "tenant".into(),
                    image: image.clone(),
                })
            })
            .collect();
        for pending in pending {
            pending.wait().expect("batched inference");
        }
        start.elapsed().as_secs_f64()
    })
    .expect("runtime");
    let stats = registry.stats("tenant").expect("stats");
    (elapsed, stats.mean_batch(), stats.largest_batch)
}

/// Round-trips the burst over loopback TCP with `WIRE_CLIENTS` connections;
/// returns elapsed seconds.
fn run_wire(registry: &LearnerRegistry, requests: &[Tensor]) -> f64 {
    let config = WireConfig::tcp_loopback()
        .with_serve(ServeConfig::default().with_max_batch(MAX_BATCH));
    WireServer::run(registry, &config, |server| {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for chunk in requests.chunks(requests.len().div_ceil(WIRE_CLIENTS)) {
                let addr = server.addr().clone();
                scope.spawn(move || {
                    let mut client = WireClient::connect(&addr).expect("connect");
                    for image in chunk {
                        client
                            .call(ServeRequest::Infer {
                                deployment: "tenant".into(),
                                image: image.clone(),
                            })
                            .expect("wire inference");
                    }
                });
            }
        });
        start.elapsed().as_secs_f64()
    })
    .expect("wire server")
}

fn main() {
    let seed = seed_from_env();
    let requests_total = if full_profile_requested() { 4096 } else { 512 };
    println!(
        "serve_throughput: {requests_total} inference requests, one tenant, \
         micro backbone, max_batch {MAX_BATCH} (seed {seed})"
    );
    rule(78);

    let mut rng = SeedRng::new(seed);
    let requests: Vec<Tensor> = (0..requests_total)
        .map(|i| class_image(i % 3, 0.05 * rng.normal().abs()))
        .collect();

    // Fresh registries so each mode starts from identical state; a warmup
    // pass primes allocators and the thread pool out of the timed region.
    let sequential_registry = registry_with_tenant(seed);
    run_sequential(&sequential_registry, &requests[..requests.len().min(32)]);
    let sequential_s = run_sequential(&sequential_registry, &requests);

    let batched_registry = registry_with_tenant(seed);
    let (batched_s, mean_batch, largest_batch) = run_batched(&batched_registry, &requests);

    let wire_registry = registry_with_tenant(seed);
    run_wire(&wire_registry, &requests[..requests.len().min(32)]);
    let wire_s = run_wire(&wire_registry, &requests);

    let sequential_rps = requests_total as f64 / sequential_s;
    let batched_rps = requests_total as f64 / batched_s;
    let wire_rps = requests_total as f64 / wire_s;
    let speedup = batched_rps / sequential_rps;
    let wire_overhead = sequential_s / wire_s;

    println!("{:<26} {:>12} {:>14}", "mode", "time [ms]", "throughput [req/s]");
    println!(
        "{:<26} {:>12.1} {:>14.0}",
        "sequential (batch=1)",
        1e3 * sequential_s,
        sequential_rps
    );
    println!(
        "{:<26} {:>12.1} {:>14.0}",
        format!("coalesced (batch<={MAX_BATCH})"),
        1e3 * batched_s,
        batched_rps
    );
    println!(
        "{:<26} {:>12.1} {:>14.0}",
        format!("wire loopback ({WIRE_CLIENTS} conns)"),
        1e3 * wire_s,
        wire_rps
    );
    rule(78);
    println!(
        "speedup {speedup:.2}x; coalesced batches: mean {mean_batch:.1}, largest {largest_batch}; \
         wire vs sequential {wire_overhead:.2}x"
    );

    // Machine-readable trajectory line (kept grep-friendly and append-only).
    println!(
        "{{\"bench\":\"serve_throughput\",\"seed\":{seed},\"requests\":{requests_total},\
         \"max_batch\":{MAX_BATCH},\"sequential_rps\":{sequential_rps:.1},\
         \"batched_rps\":{batched_rps:.1},\"speedup\":{speedup:.3},\
         \"mean_batch\":{mean_batch:.2},\"largest_batch\":{largest_batch},\
         \"wire_clients\":{WIRE_CLIENTS},\"wire_rps\":{wire_rps:.1}}}"
    );

    assert!(
        speedup > 1.0,
        "coalesced batching must beat request-at-a-time (got {speedup:.3}x)"
    );
}
