//! Regenerates **Table I**: the proposed backbones with their stride
//! profiles, feature dimensionalities, parameter counts and MAC counts.
//!
//! ```text
//! cargo run --release -p ofscil_bench --bin table1_backbones
//! ```

use ofscil::nn::models::{mobilenet_v2, resnet12, MobileNetVariant};
use ofscil::prelude::*;
use ofscil_bench::rule;

fn main() {
    println!("Table I — proposed backbones (reproduced at 32x32 input)");
    rule(100);
    println!(
        "{:<18} {:<22} {:>6} {:>6} {:>12} {:>12} {:>22}",
        "backbone", "CNN stride profile", "d_a", "d_p", "params [M]", "MACs [M]", "paper params/MACs [M]"
    );
    rule(100);

    let mut rng = SeedRng::new(0);
    let rows: Vec<(String, String, usize, usize, f64, f64, &str)> = vec![
        table_row(
            mobilenet_v2(MobileNetVariant::X1, &mut rng),
            MobileNetVariant::X1.stride_profile().to_vec(),
            256,
            "2.5 / 25.9",
        ),
        table_row(
            mobilenet_v2(MobileNetVariant::X2, &mut rng),
            MobileNetVariant::X2.stride_profile().to_vec(),
            256,
            "2.5 / 45.4",
        ),
        table_row(
            mobilenet_v2(MobileNetVariant::X4, &mut rng),
            MobileNetVariant::X4.stride_profile().to_vec(),
            256,
            "2.5 / 149.2",
        ),
        table_row(resnet12(&mut rng), vec![], 512, "12.9 / 525.3"),
    ];

    for (name, strides, d_a, d_p, params_m, macs_m, paper) in rows {
        println!(
            "{:<18} {:<22} {:>6} {:>6} {:>12.2} {:>12.1} {:>22}",
            name, strides, d_a, d_p, params_m, macs_m, paper
        );
    }
    rule(100);
    println!(
        "note: reproduced parameter counts are backbone + FCR, matching how the paper reports model cost;"
    );
    println!("      the stride profile changes MACs only, never parameters.");
}

fn table_row(
    mut backbone: ofscil::nn::models::Backbone,
    strides: Vec<usize>,
    projection_dim: usize,
    paper: &str,
) -> (String, String, usize, usize, f64, f64, &str) {
    let profile = profile_with_fcr(&mut backbone, projection_dim, 32, 32);
    let stride_label = if strides.is_empty() {
        "-".to_string()
    } else {
        strides
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    (
        profile.name.clone(),
        stride_label,
        profile.feature_dim,
        projection_dim,
        profile.params_millions(),
        profile.macs_millions(),
        paper,
    )
}
