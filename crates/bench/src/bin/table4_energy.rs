//! Regenerates **Table IV**: execution time, power and energy on the GAP9
//! model for FCR inference, backbone inference, the EM update (5-shot, one
//! new class) and FCR fine-tuning (100 epochs), per backbone.
//!
//! ```text
//! cargo run --release -p ofscil_bench --bin table4_energy
//! ```

use ofscil::nn::models::{mobilenet_v2, MobileNetVariant};
use ofscil::prelude::*;
use ofscil_bench::rule;

/// Paper-reported (time ms, power mW, energy mJ) for annotation.
const PAPER_ROWS: &[(&str, &str, f64, f64, f64)] = &[
    ("FCR", "any", 3.23, 47.75, 0.15),
    ("BB inference", "M", 48.10, 43.96, 2.12),
    ("BB inference", "M2", 52.51, 45.12, 2.40),
    ("BB inference", "M4", 99.50, 44.19, 4.40),
    ("EM update", "M", 256.65, 44.22, 11.35),
    ("EM update", "M2", 278.70, 45.75, 12.75),
    ("EM update", "M4", 513.65, 44.29, 22.75),
    ("FCR finetune", "M", 6171.7, 50.29, 310.35),
    ("FCR finetune", "M2", 6193.7, 50.33, 311.75),
    ("FCR finetune", "M4", 6428.7, 50.05, 321.75),
];

fn main() {
    let executor = Gap9Executor::default();
    println!(
        "Table IV — execution time, power and energy on the GAP9 model (8 cores, {:.0} MHz, {:.2} V)",
        executor.config().frequency_hz / 1e6,
        executor.config().voltage_v
    );
    rule(110);
    println!(
        "{:<14} {:>4} {:>12} {:>12} {:>12}   {:>12} {:>12} {:>12}",
        "operation", "BB", "time [ms]", "power [mW]", "energy [mJ]", "paper [ms]", "paper [mW]", "paper [mJ]"
    );
    rule(110);

    let mut rng = SeedRng::new(0);
    let variants = [
        ("M", MobileNetVariant::X1),
        ("M2", MobileNetVariant::X2),
        ("M4", MobileNetVariant::X4),
    ];
    let shots = 5;
    let d_p = 256;

    // FCR row (backbone independent).
    let fcr = executor.fcr_inference(1280, d_p, 8).expect("valid core count");
    print_row("FCR", "any", &fcr);

    let mut deployed = Vec::new();
    for (label, variant) in variants {
        let backbone = mobilenet_v2(variant, &mut rng);
        deployed.push((label, deploy_backbone(&backbone, 32, 32)));
    }
    for (label, workload) in &deployed {
        let cost = executor.backbone_inference(workload, 8).expect("valid core count");
        print_row("BB inference", label, &cost);
    }
    for (label, workload) in &deployed {
        let cost = executor
            .em_update(workload, 1280, d_p, shots, 8)
            .expect("valid core count");
        print_row("EM update", label, &cost);
    }
    for (label, workload) in &deployed {
        let cost = executor
            .fcr_finetune(&workload.name, 1280, d_p, 60, 100, 8)
            .expect("valid core count");
        print_row("FCR finetune", label, &cost);
    }
    rule(110);
    println!("headline: the EM update on the baseline MobileNetV2 profile is the paper's \"12 mJ per class\".");
}

fn print_row(operation: &str, backbone: &str, cost: &OperationCost) {
    let paper = PAPER_ROWS
        .iter()
        .find(|(op, bb, ..)| *op == operation && *bb == backbone);
    match paper {
        Some((_, _, t, p, e)) => println!(
            "{:<14} {:>4} {:>12.2} {:>12.2} {:>12.2}   {:>12.2} {:>12.2} {:>12.2}",
            operation, backbone, cost.time_ms, cost.power_mw, cost.energy_mj, t, p, e
        ),
        None => println!(
            "{:<14} {:>4} {:>12.2} {:>12.2} {:>12.2}",
            operation, backbone, cost.time_ms, cost.power_mw, cost.energy_mj
        ),
    }
}
