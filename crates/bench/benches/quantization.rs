//! Criterion bench: quantization primitives — prototype precision reduction,
//! int8 tensor round trips and integer matrix multiplication.

use criterion::{criterion_group, criterion_main, Criterion};
use ofscil::prelude::*;
use std::hint::black_box;

fn bench_prototype_quantization(c: &mut Criterion) {
    let mut rng = SeedRng::new(0);
    let prototype: Vec<f32> = (0..256).map(|_| rng.normal()).collect();
    let p3 = PrototypePrecision::new(3).unwrap();
    c.bench_function("prototype_quantize_256d_3bit", |b| {
        b.iter(|| {
            let q = p3.quantize(black_box(&prototype));
            black_box(q)
        })
    });
}

fn bench_int8_roundtrip(c: &mut Criterion) {
    let mut rng = SeedRng::new(1);
    let tensor =
        Tensor::from_vec((0..1280).map(|_| rng.normal()).collect(), &[1280]).unwrap();
    c.bench_function("int8_quantize_dequantize_1280", |b| {
        b.iter(|| {
            let q = QuantTensor::quantize_auto(black_box(&tensor));
            black_box(q.dequantize())
        })
    });
}

fn bench_int8_matmul(c: &mut Criterion) {
    let mut rng = SeedRng::new(2);
    let a = Tensor::from_vec((0..64 * 128).map(|_| rng.normal()).collect(), &[64, 128]).unwrap();
    let w = Tensor::from_vec((0..128 * 32).map(|_| rng.normal()).collect(), &[128, 32]).unwrap();
    let qa = QuantTensor::quantize_auto(&a);
    let qw = QuantTensor::quantize_auto(&w);
    c.bench_function("int8_matmul_64x128x32", |b| {
        b.iter(|| {
            let out = qa.matmul(black_box(&qw)).unwrap();
            black_box(out)
        })
    });
}

fn bench_fake_quant_weights(c: &mut Criterion) {
    let mut rng = SeedRng::new(3);
    c.bench_function("fake_quantize_linear_weights_int8", |b| {
        b.iter(|| {
            let mut layer = ofscil::nn::layers::Linear::new(256, 128, true, &mut rng);
            let count = ofscil::quant::quantize_layer_weights(&mut layer, 8).unwrap();
            black_box(count)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_prototype_quantization, bench_int8_roundtrip, bench_int8_matmul, bench_fake_quant_weights
}
criterion_main!(benches);
