//! Criterion bench: forward-pass latency of the feature extractors used by
//! the accuracy experiments (micro backbone, FCR projection) and of a single
//! MobileNetV2 inverted-residual stage.

use criterion::{criterion_group, criterion_main, Criterion};
use ofscil::nn::blocks::InvertedResidual;
use ofscil::nn::models::micro_backbone;
use ofscil::prelude::*;
use std::hint::black_box;

fn bench_micro_backbone(c: &mut Criterion) {
    let mut rng = SeedRng::new(0);
    let mut backbone = micro_backbone(&mut rng);
    let image = Tensor::ones(&[1, 3, 16, 16]);
    c.bench_function("micro_backbone_forward_16x16", |b| {
        b.iter(|| {
            let out = backbone.forward(black_box(&image), Mode::Eval).unwrap();
            black_box(out)
        })
    });

    let batch = Tensor::ones(&[8, 3, 16, 16]);
    c.bench_function("micro_backbone_forward_batch8", |b| {
        b.iter(|| {
            let out = backbone.forward(black_box(&batch), Mode::Eval).unwrap();
            black_box(out)
        })
    });
}

fn bench_fcr(c: &mut Criterion) {
    let mut rng = SeedRng::new(1);
    let mut fcr = Fcr::new(1280, 256, &mut rng);
    let features = Tensor::ones(&[1, 1280]);
    c.bench_function("fcr_projection_1280_to_256", |b| {
        b.iter(|| {
            let out = fcr.forward(black_box(&features), Mode::Eval).unwrap();
            black_box(out)
        })
    });
}

fn bench_inverted_residual(c: &mut Criterion) {
    let mut rng = SeedRng::new(2);
    let mut block = InvertedResidual::new(32, 32, 1, 6, &mut rng);
    let input = Tensor::ones(&[1, 32, 16, 16]);
    c.bench_function("inverted_residual_32ch_16x16", |b| {
        b.iter(|| {
            let out = block.forward(black_box(&input), Mode::Eval).unwrap();
            black_box(out)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_micro_backbone, bench_fcr, bench_inverted_residual
}
criterion_main!(benches);
