//! Criterion bench: throughput of the GAP9 deployment and cost models (the
//! table/figure generators call these thousands of times during sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use ofscil::nn::models::{mobilenet_v2, MobileNetVariant};
use ofscil::prelude::*;
use std::hint::black_box;

fn bench_deployment(c: &mut Criterion) {
    let mut rng = SeedRng::new(0);
    let backbone = mobilenet_v2(MobileNetVariant::X4, &mut rng);
    c.bench_function("deploy_mobilenetv2_x4", |b| {
        b.iter(|| {
            let workload = deploy_backbone(black_box(&backbone), 32, 32);
            black_box(workload)
        })
    });
}

fn bench_latency_model(c: &mut Criterion) {
    let mut rng = SeedRng::new(0);
    let backbone = mobilenet_v2(MobileNetVariant::X4, &mut rng);
    let workload = deploy_backbone(&backbone, 32, 32);
    let config = Gap9Config::default();
    c.bench_function("estimate_execution_x4_8cores", |b| {
        b.iter(|| {
            let estimate = estimate_execution(black_box(&workload), &config, 8, false).unwrap();
            black_box(estimate.macs_per_cycle())
        })
    });
}

fn bench_table4_operation(c: &mut Criterion) {
    let mut rng = SeedRng::new(0);
    let backbone = mobilenet_v2(MobileNetVariant::X1, &mut rng);
    let workload = deploy_backbone(&backbone, 32, 32);
    let executor = Gap9Executor::default();
    c.bench_function("em_update_cost_model", |b| {
        b.iter(|| {
            let cost = executor
                .em_update(black_box(&workload), 1280, 256, 5, 8)
                .unwrap();
            black_box(cost.energy_mj)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_deployment, bench_latency_model, bench_table4_operation
}
criterion_main!(benches);
