//! Criterion bench: the online-learning primitives — single-pass class
//! learning (the paper's EM update) and explicit-memory classification.

use criterion::{criterion_group, criterion_main, Criterion};
use ofscil::prelude::*;
use std::hint::black_box;

fn setup_model_and_support() -> (OFscilModel, Batch, Tensor) {
    let mut rng = SeedRng::new(0);
    let model = OFscilModel::new(BackboneKind::Micro, 32, &mut rng);
    let generator = SyntheticCifar::new(SyntheticConfig::tiny(), 3);
    let support = generator
        .generate_split(&[0, 1, 2, 3, 4], 5, 0)
        .unwrap()
        .full_batch()
        .unwrap();
    let query = generator
        .generate_split(&[0, 1, 2, 3, 4], 4, 1)
        .unwrap()
        .full_batch()
        .unwrap()
        .images;
    (model, support, query)
}

fn bench_online_class_learning(c: &mut Criterion) {
    let (mut model, support, _) = setup_model_and_support();
    c.bench_function("em_update_5way_5shot", |b| {
        b.iter(|| model.learn_classes_online(black_box(&support)).unwrap())
    });
}

fn bench_prediction(c: &mut Criterion) {
    let (mut model, support, query) = setup_model_and_support();
    model.learn_classes_online(&support).unwrap();
    c.bench_function("predict_20_queries_5_classes", |b| {
        b.iter(|| {
            let out = model.predict(black_box(&query)).unwrap();
            black_box(out)
        })
    });
}

fn bench_em_similarity(c: &mut Criterion) {
    let mut em = ExplicitMemory::new(256);
    let mut rng = SeedRng::new(7);
    for class in 0..100usize {
        let proto: Vec<f32> = (0..256).map(|_| rng.normal()).collect();
        em.set_prototype(class, &proto).unwrap();
    }
    let query: Vec<f32> = (0..256).map(|_| rng.normal()).collect();
    c.bench_function("em_classify_query_100_classes_256d", |b| {
        b.iter(|| {
            let out = em.classify(black_box(&query)).unwrap();
            black_box(out)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_online_class_learning, bench_prediction, bench_em_similarity
}
criterion_main!(benches);
