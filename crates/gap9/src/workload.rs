//! Deployment workload descriptors.

use serde::{Deserialize, Serialize};

/// Kernel family of a deployed layer; determines the sustained throughput and
/// the unit of parallelisation used by the latency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// Standard or pointwise convolution (including inverted-residual blocks).
    Convolution,
    /// Depthwise convolution.
    Depthwise,
    /// Fully connected / matrix–vector kernel.
    Linear,
    /// Normalisation, activation, pooling and other memory-bound kernels.
    MemoryBound,
}

/// One deployed layer: everything the latency and power models need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWorkload {
    /// Layer display name.
    pub name: String,
    /// Kernel family.
    pub kernel: KernelClass,
    /// Multiply-accumulate operations for one sample.
    pub macs: u64,
    /// Resident weight bytes (int8 deployment: one byte per parameter).
    pub weight_bytes: u64,
    /// Input activation bytes.
    pub input_bytes: u64,
    /// Output activation bytes.
    pub output_bytes: u64,
    /// Independent work units available for parallelisation (output pixels
    /// for convolutions, output neurons for linear layers).
    pub parallel_units: u64,
}

impl LayerWorkload {
    /// Total bytes that must transit the DMA for one execution of the layer.
    pub fn dma_bytes(&self) -> u64 {
        self.weight_bytes + self.input_bytes + self.output_bytes
    }

    /// Working-set bytes that must coexist in L1 for one tile.
    pub fn working_set_bytes(&self) -> u64 {
        self.dma_bytes()
    }
}

/// A deployed network: an ordered list of layer workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkWorkload {
    /// Network display name.
    pub name: String,
    /// Layers in execution order.
    pub layers: Vec<LayerWorkload>,
    /// Forces the latency model to stream weights from L3 even when this
    /// network alone would fit in L2 — used for components (such as the FCR)
    /// that share the on-chip memory with a backbone that already overflows
    /// it.
    pub force_l3_weights: bool,
}

impl NetworkWorkload {
    /// Total MACs of one forward pass.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total resident weight bytes.
    pub fn total_weight_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_bytes).sum()
    }

    /// Number of deployed layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_layer(macs: u64, weights: u64) -> LayerWorkload {
        LayerWorkload {
            name: "conv".into(),
            kernel: KernelClass::Convolution,
            macs,
            weight_bytes: weights,
            input_bytes: 100,
            output_bytes: 200,
            parallel_units: 64,
        }
    }

    #[test]
    fn byte_accounting() {
        let layer = toy_layer(1000, 300);
        assert_eq!(layer.dma_bytes(), 600);
        assert_eq!(layer.working_set_bytes(), 600);
    }

    #[test]
    fn network_totals() {
        let net = NetworkWorkload {
            name: "toy".into(),
            layers: vec![toy_layer(1000, 300), toy_layer(2000, 700)],
            force_l3_weights: false,
        };
        assert_eq!(net.total_macs(), 3000);
        assert_eq!(net.total_weight_bytes(), 1000);
        assert_eq!(net.num_layers(), 2);
        assert!(!net.is_empty());
    }
}
