//! Latency model: per-layer compute, DMA and overhead cycles.

use crate::{Gap9Config, Gap9Error, KernelClass, NetworkWorkload, Result};
use serde::{Deserialize, Serialize};

/// Cycle breakdown of one deployed layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Layer name.
    pub name: String,
    /// Compute cycles on the active cores.
    pub compute_cycles: f64,
    /// DMA cycles (weights + activations).
    pub dma_cycles: f64,
    /// Fixed per-layer overhead cycles.
    pub overhead_cycles: f64,
}

impl LayerCost {
    /// Total cycles of the layer (compute and DMA are modelled as
    /// non-overlapping, which matches the paper's observation that the FCR
    /// layer is dominated by its weight transfer).
    pub fn total_cycles(&self) -> f64 {
        self.compute_cycles + self.dma_cycles + self.overhead_cycles
    }
}

/// The execution estimate of one network on the modelled device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionEstimate {
    /// Per-layer breakdown.
    pub layers: Vec<LayerCost>,
    /// Number of active cluster cores.
    pub cores: usize,
    /// Total MACs of the estimated pass.
    pub macs: u64,
    /// Whether the pass included training (backward) kernels.
    pub training: bool,
}

impl ExecutionEstimate {
    /// Total cycles of the pass.
    pub fn total_cycles(&self) -> f64 {
        self.layers.iter().map(LayerCost::total_cycles).sum()
    }

    /// Total DMA cycles of the pass.
    pub fn dma_cycles(&self) -> f64 {
        self.layers.iter().map(|l| l.dma_cycles).sum()
    }

    /// Fraction of the total time spent in DMA transfers.
    pub fn dma_fraction(&self) -> f64 {
        let total = self.total_cycles();
        if total <= 0.0 {
            0.0
        } else {
            self.dma_cycles() / total
        }
    }

    /// Wall-clock latency in milliseconds at the configured frequency.
    pub fn time_ms(&self, config: &Gap9Config) -> f64 {
        config.cycles_to_ms(self.total_cycles())
    }

    /// Overall MACs per cycle, the metric of the paper's Fig. 2.
    pub fn macs_per_cycle(&self) -> f64 {
        let total = self.total_cycles();
        if total <= 0.0 {
            0.0
        } else {
            self.macs as f64 / total
        }
    }
}

/// Estimates the execution of a deployed network on `cores` cluster cores.
///
/// The model:
/// * compute cycles = MACs / (cores × per-kernel sustained throughput ×
///   parallel efficiency), where the efficiency follows
///   `units / (units + overhead · (cores − 1))` — small output tiles
///   parallelise poorly, which is what separates the three stride profiles in
///   Fig. 2,
/// * DMA cycles move weights from L3 when the whole network does not fit in
///   L2 (true for every backbone here) and activations from L2, at the
///   configured bandwidths; tiles larger than L1 pay a re-fetch surcharge,
/// * every layer adds a fixed overhead (kernel launch + DMA programming).
///
/// # Errors
///
/// Returns an error when `cores` is zero or exceeds the cluster size, or the
/// configuration is invalid.
pub fn estimate_execution(
    network: &NetworkWorkload,
    config: &Gap9Config,
    cores: usize,
    training: bool,
) -> Result<ExecutionEstimate> {
    config.validate()?;
    if cores == 0 || cores > config.cluster_cores {
        return Err(Gap9Error::InvalidCoreCount {
            requested: cores,
            available: config.cluster_cores,
        });
    }
    let weights_fit_l2 =
        !network.force_l3_weights && network.total_weight_bytes() <= config.l2_bytes as u64;
    let mut layers = Vec::with_capacity(network.num_layers());
    for layer in &network.layers {
        let throughput = match (training, layer.kernel) {
            (true, _) => config.training_macs_per_core_cycle,
            (false, KernelClass::Linear) => config.linear_macs_per_core_cycle,
            (false, KernelClass::MemoryBound) => config.linear_macs_per_core_cycle,
            (false, _) => config.conv_macs_per_core_cycle,
        };
        let units = layer.parallel_units.max(1) as f64;
        let efficiency = units / (units + config.parallel_overhead_units * (cores as f64 - 1.0));
        let compute_cycles = if layer.macs == 0 {
            // Memory-bound layers: one pass over the activations.
            layer.output_bytes as f64 / (cores as f64)
        } else {
            layer.macs as f64 / (cores as f64 * throughput * efficiency)
        };

        // Weights stream from L3 when the network spills out of L2;
        // activations always move over the L2 DMA.
        let weight_bw = if weights_fit_l2 {
            config.dma_l2_bytes_per_cycle
        } else {
            config.dma_l3_bytes_per_cycle
        };
        let mut dma_cycles = layer.weight_bytes as f64 / weight_bw
            + (layer.input_bytes + layer.output_bytes) as f64 / config.dma_l2_bytes_per_cycle;
        // L1 tiling surcharge: every extra tile re-programs the DMA and
        // re-fetches a share of the weights.
        let tiles = (layer.working_set_bytes() as f64 / config.l1_bytes as f64).ceil().max(1.0);
        if tiles > 1.0 {
            dma_cycles *= 1.0 + 0.15 * (tiles - 1.0).min(8.0);
        }
        // Training passes move weights in and gradients out.
        if training {
            dma_cycles += layer.weight_bytes as f64 / weight_bw;
        }

        layers.push(LayerCost {
            name: layer.name.clone(),
            compute_cycles,
            dma_cycles,
            overhead_cycles: config.layer_overhead_cycles as f64 * tiles,
        });
    }
    let mut macs = network.total_macs();
    if training {
        // Forward + backward (input and weight gradients) ≈ 3× forward MACs.
        macs *= 3;
        for layer in &mut layers {
            layer.compute_cycles *= 3.0;
        }
    }
    Ok(ExecutionEstimate { layers, cores, macs, training })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::{deploy_backbone, deploy_fcr};
    use ofscil_nn::models::{mobilenet_v2, MobileNetVariant};
    use ofscil_tensor::SeedRng;

    fn x4_workload() -> NetworkWorkload {
        let mut rng = SeedRng::new(0);
        deploy_backbone(&mobilenet_v2(MobileNetVariant::X4, &mut rng), 32, 32)
    }

    #[test]
    fn invalid_core_counts_are_rejected() {
        let config = Gap9Config::default();
        let fcr = deploy_fcr(64, 16);
        assert!(estimate_execution(&fcr, &config, 0, false).is_err());
        assert!(estimate_execution(&fcr, &config, 9, false).is_err());
    }

    #[test]
    fn more_cores_reduce_latency() {
        let config = Gap9Config::default();
        let network = x4_workload();
        let one = estimate_execution(&network, &config, 1, false).unwrap();
        let four = estimate_execution(&network, &config, 4, false).unwrap();
        let eight = estimate_execution(&network, &config, 8, false).unwrap();
        assert!(one.total_cycles() > four.total_cycles());
        assert!(four.total_cycles() > eight.total_cycles());
        // MACs per cycle increase with core count but saturate below the
        // theoretical peak.
        assert!(one.macs_per_cycle() < four.macs_per_cycle());
        assert!(four.macs_per_cycle() < eight.macs_per_cycle());
        assert!(eight.macs_per_cycle() < 8.0 * config.conv_macs_per_core_cycle);
    }

    #[test]
    fn stride_profiles_order_macs_per_cycle() {
        // The paper's Fig. 2: the x4 profile (large feature maps) reaches the
        // highest MACs/cycle, the baseline profile the lowest.
        let config = Gap9Config::default();
        let mut rng = SeedRng::new(0);
        let x1 = deploy_backbone(&mobilenet_v2(MobileNetVariant::X1, &mut rng), 32, 32);
        let x2 = deploy_backbone(&mobilenet_v2(MobileNetVariant::X2, &mut rng), 32, 32);
        let x4 = deploy_backbone(&mobilenet_v2(MobileNetVariant::X4, &mut rng), 32, 32);
        let m1 = estimate_execution(&x1, &config, 8, false).unwrap().macs_per_cycle();
        let m2 = estimate_execution(&x2, &config, 8, false).unwrap().macs_per_cycle();
        let m4 = estimate_execution(&x4, &config, 8, false).unwrap().macs_per_cycle();
        assert!(m1 < m2 && m2 < m4, "{m1} {m2} {m4}");
        // Paper reports ~6.5 MACs/cycle for the x4 profile at 8 cores.
        assert!((3.5..8.0).contains(&m4), "x4 macs/cycle {m4}");
    }

    #[test]
    fn backbone_latency_matches_table4_order_of_magnitude() {
        let config = Gap9Config::default();
        let network = x4_workload();
        let estimate = estimate_execution(&network, &config, 8, false).unwrap();
        let ms = estimate.time_ms(&config);
        // Paper Table IV: 99.5 ms for MobileNetV2 x4 inference.
        assert!((40.0..250.0).contains(&ms), "x4 inference {ms} ms");
    }

    #[test]
    fn fcr_is_dma_dominated() {
        let config = Gap9Config::default();
        let fcr = deploy_fcr(1280, 256);
        let estimate = estimate_execution(&fcr, &config, 8, false).unwrap();
        // The 328 kB weight transfer dominates the 0.33 M MAC compute (paper
        // §VI-C): well over half the time is DMA.
        assert!(estimate.dma_fraction() > 0.5, "dma fraction {}", estimate.dma_fraction());
        let ms = estimate.time_ms(&config);
        // Paper: 3.23 ms.
        assert!((1.0..8.0).contains(&ms), "fcr {ms} ms");
    }

    #[test]
    fn training_pass_is_more_expensive() {
        let config = Gap9Config::default();
        let fcr = deploy_fcr(1280, 256);
        let forward = estimate_execution(&fcr, &config, 8, false).unwrap();
        let training = estimate_execution(&fcr, &config, 8, true).unwrap();
        // A training pass triples the compute and doubles the weight traffic;
        // on the DMA-dominated FCR that lands at roughly twice the forward
        // cost.
        assert!(training.total_cycles() > 1.7 * forward.total_cycles());
        assert!(training.training);
    }
}
