//! Error type for the gap9 crate.

use std::error::Error;
use std::fmt;

/// Error returned by the GAP9 deployment and cost models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gap9Error {
    /// The requested core count is not available on the modelled cluster.
    InvalidCoreCount {
        /// The requested number of cores.
        requested: usize,
        /// The number of cluster cores available.
        available: usize,
    },
    /// A workload or configuration value was invalid.
    InvalidConfig(String),
}

impl fmt::Display for Gap9Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gap9Error::InvalidCoreCount { requested, available } => {
                write!(f, "requested {requested} cores but the cluster has {available}")
            }
            Gap9Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for Gap9Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_counts() {
        let e = Gap9Error::InvalidCoreCount { requested: 16, available: 8 };
        assert!(e.to_string().contains("16"));
        assert!(e.to_string().contains('8'));
    }
}
