//! The high-level operations of the paper's Table IV and the Fig. 2 core
//! sweep.

use crate::{
    deploy_fcr, estimate_execution, Gap9Config, NetworkWorkload, PowerModel, Result,
};
use serde::{Deserialize, Serialize};

/// Latency / power / energy of one deployed operation (one Table IV cell
/// group).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperationCost {
    /// Operation name (e.g. "EM update").
    pub operation: String,
    /// Network the operation ran on.
    pub network: String,
    /// Wall-clock time in milliseconds.
    pub time_ms: f64,
    /// Average power in milliwatts.
    pub power_mw: f64,
    /// Energy in millijoules.
    pub energy_mj: f64,
}

impl OperationCost {
    fn from_parts(operation: &str, network: &str, time_ms: f64, power_mw: f64) -> Self {
        OperationCost {
            operation: operation.to_string(),
            network: network.to_string(),
            time_ms,
            power_mw,
            energy_mj: power_mw * time_ms / 1e3,
        }
    }
}

/// Executes the paper's deployment operations on the modelled GAP9 device.
#[derive(Debug, Clone)]
pub struct Gap9Executor {
    config: Gap9Config,
    power: PowerModel,
}

impl Default for Gap9Executor {
    fn default() -> Self {
        Gap9Executor::new(Gap9Config::default())
    }
}

impl Gap9Executor {
    /// Creates an executor for the given device configuration.
    pub fn new(config: Gap9Config) -> Self {
        let power = PowerModel::new(config.clone());
        Gap9Executor { config, power }
    }

    /// The device configuration.
    pub fn config(&self) -> &Gap9Config {
        &self.config
    }

    /// FCR inference for one sample (Table IV, "FCR" row).
    ///
    /// # Errors
    ///
    /// Returns an error when `cores` is invalid.
    pub fn fcr_inference(
        &self,
        feature_dim: usize,
        projection_dim: usize,
        cores: usize,
    ) -> Result<OperationCost> {
        let fcr = deploy_fcr(feature_dim, projection_dim);
        let estimate = estimate_execution(&fcr, &self.config, cores, false)?;
        Ok(OperationCost::from_parts(
            "FCR inference",
            &fcr.name,
            estimate.time_ms(&self.config),
            self.power.power_mw(&estimate),
        ))
    }

    /// Backbone inference for one sample (Table IV, "BB inference" rows).
    ///
    /// # Errors
    ///
    /// Returns an error when `cores` is invalid.
    pub fn backbone_inference(
        &self,
        backbone: &NetworkWorkload,
        cores: usize,
    ) -> Result<OperationCost> {
        let estimate = estimate_execution(backbone, &self.config, cores, false)?;
        Ok(OperationCost::from_parts(
            "BB inference",
            &backbone.name,
            estimate.time_ms(&self.config),
            self.power.power_mw(&estimate),
        ))
    }

    /// Online EM update for one new class learned from `shots` samples
    /// (Table IV, "EM update" rows): `shots` backbone + FCR passes plus the
    /// prototype accumulation, which is negligible next to the inference.
    ///
    /// # Errors
    ///
    /// Returns an error when `cores` is invalid.
    pub fn em_update(
        &self,
        backbone: &NetworkWorkload,
        feature_dim: usize,
        projection_dim: usize,
        shots: usize,
        cores: usize,
    ) -> Result<OperationCost> {
        let backbone_cost = self.backbone_inference(backbone, cores)?;
        let fcr_cost = self.fcr_inference(feature_dim, projection_dim, cores)?;
        // Prototype accumulation: one pass over d_p values per shot plus the
        // bit-shift normalisation — microseconds, modelled as d_p cycles/shot.
        let accumulate_ms = self
            .config
            .cycles_to_ms(projection_dim as f64 * shots as f64 + 1_000.0);
        let time_ms = shots as f64 * (backbone_cost.time_ms + fcr_cost.time_ms) + accumulate_ms;
        // Power is dominated by the repeated inference passes.
        let power_mw = (backbone_cost.power_mw * backbone_cost.time_ms
            + fcr_cost.power_mw * fcr_cost.time_ms)
            / (backbone_cost.time_ms + fcr_cost.time_ms);
        Ok(OperationCost::from_parts("EM update", &backbone.name, time_ms, power_mw))
    }

    /// FCR fine-tuning (Table IV, "FCR finetune" rows): `epochs` passes over
    /// the activation memory of `classes` classes, each pass being a
    /// forward + backward of the FCR per class plus the weight / gradient
    /// transfers.
    ///
    /// # Errors
    ///
    /// Returns an error when `cores` is invalid.
    pub fn fcr_finetune(
        &self,
        backbone_name: &str,
        feature_dim: usize,
        projection_dim: usize,
        classes: usize,
        epochs: usize,
        cores: usize,
    ) -> Result<OperationCost> {
        let fcr = deploy_fcr(feature_dim, projection_dim);
        // One training pass of the FCR over a single class activation.
        let per_class = estimate_execution(&fcr, &self.config, cores, true)?;
        // The weight / gradient DMA happens once per epoch (sub-batching keeps
        // the weights resident while the class activations stream through),
        // while the compute repeats per class.
        let compute_ms_per_class = self.config.cycles_to_ms(
            per_class.layers.iter().map(|l| l.compute_cycles).sum::<f64>(),
        );
        let dma_ms_per_epoch = self.config.cycles_to_ms(
            per_class.layers.iter().map(|l| l.dma_cycles + l.overhead_cycles).sum::<f64>(),
        );
        let activation_dma_ms = self
            .config
            .cycles_to_ms(classes as f64 * feature_dim as f64 / self.config.dma_l3_bytes_per_cycle);
        let time_ms = epochs as f64
            * (classes as f64 * compute_ms_per_class + dma_ms_per_epoch + activation_dma_ms);
        let power_mw = self.power.power_mw(&per_class);
        Ok(OperationCost::from_parts("FCR finetune", backbone_name, time_ms, power_mw))
    }

    /// MACs-per-cycle of a workload across a sweep of active core counts (the
    /// paper's Fig. 2).
    ///
    /// # Errors
    ///
    /// Returns an error when any core count is invalid.
    pub fn macs_per_cycle_sweep(
        &self,
        network: &NetworkWorkload,
        cores: &[usize],
        training: bool,
    ) -> Result<Vec<(usize, f64)>> {
        cores
            .iter()
            .map(|&c| {
                estimate_execution(network, &self.config, c, training)
                    .map(|e| (c, e.macs_per_cycle()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy_backbone;
    use ofscil_nn::models::{mobilenet_v2, MobileNetVariant};
    use ofscil_tensor::SeedRng;

    fn executor_and_x4() -> (Gap9Executor, NetworkWorkload) {
        let mut rng = SeedRng::new(0);
        let backbone = deploy_backbone(&mobilenet_v2(MobileNetVariant::X4, &mut rng), 32, 32);
        (Gap9Executor::default(), backbone)
    }

    #[test]
    fn fcr_inference_matches_table4_range() {
        let executor = Gap9Executor::default();
        let cost = executor.fcr_inference(1280, 256, 8).unwrap();
        // Paper: 3.23 ms, 47.75 mW, 0.15 mJ.
        assert!((1.0..8.0).contains(&cost.time_ms), "time {} ms", cost.time_ms);
        assert!((40.0..50.0).contains(&cost.power_mw), "power {} mW", cost.power_mw);
        assert!((0.05..0.5).contains(&cost.energy_mj), "energy {} mJ", cost.energy_mj);
    }

    #[test]
    fn em_update_is_roughly_shots_times_inference() {
        let (executor, backbone) = executor_and_x4();
        let inference = executor.backbone_inference(&backbone, 8).unwrap();
        let update = executor.em_update(&backbone, 1280, 256, 5, 8).unwrap();
        let ratio = update.time_ms / inference.time_ms;
        assert!((4.5..6.5).contains(&ratio), "ratio {ratio}");
        // Paper: 22.75 mJ for MobileNetV2 x4; assert the order of magnitude.
        assert!((5.0..60.0).contains(&update.energy_mj), "energy {} mJ", update.energy_mj);
    }

    #[test]
    fn finetune_dominates_em_update() {
        let (executor, backbone) = executor_and_x4();
        let update = executor.em_update(&backbone, 1280, 256, 5, 8).unwrap();
        let finetune = executor
            .fcr_finetune(&backbone.name, 1280, 256, 60, 100, 8)
            .unwrap();
        // Paper: ~6.4 s and ~322 mJ vs ~0.51 s and ~23 mJ.
        assert!(finetune.time_ms > 5.0 * update.time_ms);
        assert!(finetune.energy_mj > 5.0 * update.energy_mj);
        assert!((2_000.0..20_000.0).contains(&finetune.time_ms), "{} ms", finetune.time_ms);
        assert!((100.0..900.0).contains(&finetune.energy_mj), "{} mJ", finetune.energy_mj);
        assert!(finetune.power_mw > update.power_mw);
    }

    #[test]
    fn twelve_millijoule_claim_holds_for_baseline_backbone() {
        // The headline claim: learning a new class (EM update, 5-shot) on the
        // baseline MobileNetV2 profile costs on the order of 12 mJ.
        let mut rng = SeedRng::new(0);
        let backbone = deploy_backbone(&mobilenet_v2(MobileNetVariant::X1, &mut rng), 32, 32);
        let executor = Gap9Executor::default();
        let update = executor.em_update(&backbone, 1280, 256, 5, 8).unwrap();
        assert!(
            (5.0..30.0).contains(&update.energy_mj),
            "per-class energy {} mJ",
            update.energy_mj
        );
    }

    #[test]
    fn sweep_is_monotone_in_cores() {
        let (executor, backbone) = executor_and_x4();
        let sweep = executor
            .macs_per_cycle_sweep(&backbone, &[1, 2, 4, 8], false)
            .unwrap();
        assert_eq!(sweep.len(), 4);
        for window in sweep.windows(2) {
            assert!(window[1].1 > window[0].1);
        }
        assert!(executor.macs_per_cycle_sweep(&backbone, &[0], false).is_err());
    }
}
