//! Power and energy model at the 650 mV / 240 MHz operating point.

use crate::{ExecutionEstimate, Gap9Config};
use serde::{Deserialize, Serialize};

/// Converts execution estimates into power and energy figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    config: Gap9Config,
}

impl PowerModel {
    /// Creates a power model for the given device configuration.
    pub fn new(config: Gap9Config) -> Self {
        PowerModel { config }
    }

    /// The underlying device configuration.
    pub fn config(&self) -> &Gap9Config {
        &self.config
    }

    /// Average power in milliwatts while running `estimate`.
    ///
    /// Static leakage plus per-active-core dynamic power, plus DMA power
    /// weighted by the fraction of time the transfers dominate, plus a
    /// training surcharge for backward passes.
    pub fn power_mw(&self, estimate: &ExecutionEstimate) -> f64 {
        let mut power = self.config.leakage_mw
            + estimate.cores as f64 * self.config.core_dynamic_mw
            + self.config.dma_mw * estimate.dma_fraction();
        if estimate.training {
            power += self.config.training_extra_mw;
        }
        power
    }

    /// Energy in millijoules for running `estimate` once.
    pub fn energy_mj(&self, estimate: &ExecutionEstimate) -> f64 {
        self.power_mw(estimate) * estimate.time_ms(&self.config) / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::deploy_fcr;
    use crate::estimate_execution;

    #[test]
    fn power_is_within_the_50mw_envelope() {
        let config = Gap9Config::default();
        let model = PowerModel::new(config.clone());
        let fcr = deploy_fcr(1280, 256);
        let inference = estimate_execution(&fcr, &config, 8, false).unwrap();
        let p = model.power_mw(&inference);
        assert!((40.0..50.0).contains(&p), "inference power {p} mW");
        let training = estimate_execution(&fcr, &config, 8, true).unwrap();
        let pt = model.power_mw(&training);
        assert!(pt > p);
        assert!(pt <= 55.0, "training power {pt} mW");
    }

    #[test]
    fn energy_scales_with_time_and_power() {
        let config = Gap9Config::default();
        let model = PowerModel::new(config.clone());
        let fcr = deploy_fcr(1280, 256);
        let one_core = estimate_execution(&fcr, &config, 1, false).unwrap();
        let eight_cores = estimate_execution(&fcr, &config, 8, false).unwrap();
        let e1 = model.energy_mj(&one_core);
        let e8 = model.energy_mj(&eight_cores);
        assert!(e1 > 0.0 && e8 > 0.0);
        // Energy = power × time; both estimates must be self-consistent.
        assert!(
            (e8 - model.power_mw(&eight_cores) * eight_cores.time_ms(&config) / 1e3).abs() < 1e-9
        );
        // Fewer cores means lower power; the DMA-bound FCR barely speeds up
        // with more cores, so the single-core run is the more efficient one
        // here (power drops faster than latency grows is false — check the
        // actual relation instead of assuming it).
        assert!(model.power_mw(&one_core) < model.power_mw(&eight_cores));
    }
}
