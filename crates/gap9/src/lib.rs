//! GAP9-class multi-core MCU model for the O-FSCIL deployment experiments.
//!
//! The paper deploys O-FSCIL on the GAP9 microcontroller: a fabric controller
//! plus a 9-core RISC-V cluster with SIMD int8 MAC support, a three-level
//! memory hierarchy (L1 shared by the cluster, L2 on chip, L3 external) and
//! DMA engines for asynchronous transfers, running at 240 MHz / 650 mV within
//! a ~50 mW power envelope.
//!
//! Real silicon is not available offline, so this crate reproduces the
//! *measured* quantities of the paper (Table IV latency / power / energy and
//! the Fig. 2 MACs-per-cycle scaling) with a deployment cost model:
//!
//! * [`deploy_backbone`] / [`deploy_fcr`] turn a trained backbone (or the
//!   FCR projection) into a [`NetworkWorkload`]: per-layer MACs, weight and
//!   activation bytes and parallelisable units,
//! * [`estimate_execution`] runs the tiling + latency model: per-layer
//!   compute cycles (SIMD throughput × a parallel-efficiency curve), DMA
//!   cycles from the memory level the weights live in, and per-layer
//!   overheads,
//! * [`PowerModel`] converts an execution estimate into power and energy at
//!   the 650 mV / 240 MHz operating point,
//! * [`Gap9Executor`] assembles the Table IV operations — FCR inference,
//!   backbone inference, EM update (5-shot) and FCR fine-tuning — and the
//!   Fig. 2 core sweep.
//!
//! # Example
//!
//! ```
//! use ofscil_gap9::{deploy_fcr, estimate_execution, Gap9Config};
//!
//! let config = Gap9Config::default();
//! let fcr = deploy_fcr(1280, 256);
//! let estimate = estimate_execution(&fcr, &config, 8, false).unwrap();
//! assert!(estimate.time_ms(&config) > 0.0);
//! ```

//!
//! The section below (included from `src/README.md` so it is readable both
//! on GitHub and in rustdoc) documents the energy model end-to-end: the
//! workload extraction, the latency and power equations, the calibration
//! protocol and the model's limits.
#![doc = ""]
#![doc = include_str!("README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod deploy;
mod error;
mod ops;
mod perf;
mod power;
mod workload;

pub use config::Gap9Config;
pub use deploy::{deploy_backbone, deploy_fcr};
pub use error::Gap9Error;
pub use ops::{Gap9Executor, OperationCost};
pub use perf::{estimate_execution, ExecutionEstimate, LayerCost};
pub use power::PowerModel;
pub use workload::{KernelClass, LayerWorkload, NetworkWorkload};

/// Result alias used across the gap9 crate.
pub type Result<T> = std::result::Result<T, Gap9Error>;
