//! GAP9 hardware description and calibrated model constants.

use serde::{Deserialize, Serialize};

/// Hardware parameters and cost-model constants of a GAP9-class device at its
/// most energy-efficient operating point (650 mV / 240 MHz, paper §VI-C).
///
/// The structural values (core count, memory sizes, frequency) come from the
/// GAP9 product brief; the throughput, bandwidth and power constants are
/// calibrated once so the modelled MobileNetV2 row of Table IV lands near the
/// paper's measurement, and are then held fixed for every other experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gap9Config {
    /// Cluster compute cores available for parallel kernels (GAP9: 8 worker
    /// cores + 1 cluster controller; the controller is not counted here).
    pub cluster_cores: usize,
    /// Cluster clock frequency in hertz.
    pub frequency_hz: f64,
    /// Core supply voltage in volts (reported for context; the power model
    /// is calibrated at this operating point).
    pub voltage_v: f64,
    /// Shared cluster L1 size in bytes.
    pub l1_bytes: usize,
    /// On-chip L2 size in bytes.
    pub l2_bytes: usize,
    /// External L3 size in bytes.
    pub l3_bytes: usize,
    /// DMA bandwidth between L2 and L1 in bytes per cluster cycle.
    pub dma_l2_bytes_per_cycle: f64,
    /// Effective DMA bandwidth between L3 and L1 in bytes per cluster cycle.
    pub dma_l3_bytes_per_cycle: f64,
    /// Sustained int8 MACs per core per cycle for convolutional kernels.
    pub conv_macs_per_core_cycle: f64,
    /// Sustained int8 MACs per core per cycle for fully connected kernels.
    pub linear_macs_per_core_cycle: f64,
    /// Sustained MACs per core per cycle for training (backward) kernels,
    /// which run without the int8 SIMD path.
    pub training_macs_per_core_cycle: f64,
    /// Parallelisation overhead: equivalent work units consumed per extra
    /// active core (models fork/join and load imbalance on small tiles).
    pub parallel_overhead_units: f64,
    /// Fixed per-layer overhead cycles (kernel launch, DMA programming).
    pub layer_overhead_cycles: u64,
    /// Static (leakage + fabric controller) power in milliwatts.
    pub leakage_mw: f64,
    /// Dynamic power per active cluster core in milliwatts.
    pub core_dynamic_mw: f64,
    /// Additional power while DMA transfers dominate, in milliwatts.
    pub dma_mw: f64,
    /// Additional power during training (gradient computation and weight
    /// write-back), in milliwatts.
    pub training_extra_mw: f64,
}

impl Default for Gap9Config {
    fn default() -> Self {
        Gap9Config {
            cluster_cores: 8,
            frequency_hz: 240e6,
            voltage_v: 0.65,
            l1_bytes: 128 * 1024,
            l2_bytes: 1_500 * 1024,
            l3_bytes: 8 * 1024 * 1024,
            dma_l2_bytes_per_cycle: 8.0,
            dma_l3_bytes_per_cycle: 0.5,
            conv_macs_per_core_cycle: 0.95,
            linear_macs_per_core_cycle: 0.55,
            training_macs_per_core_cycle: 0.40,
            parallel_overhead_units: 2.0,
            layer_overhead_cycles: 5_000,
            leakage_mw: 10.0,
            core_dynamic_mw: 4.3,
            dma_mw: 3.0,
            training_extra_mw: 5.5,
        }
    }
}

impl Gap9Config {
    /// Converts a cycle count into milliseconds at the configured frequency.
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / self.frequency_hz * 1e3
    }

    /// Validates structural consistency.
    ///
    /// # Errors
    ///
    /// Returns an error when any capacity, bandwidth or throughput is zero.
    pub fn validate(&self) -> crate::Result<()> {
        if self.cluster_cores == 0 {
            return Err(crate::Gap9Error::InvalidConfig("cluster_cores must be nonzero".into()));
        }
        if self.frequency_hz <= 0.0 {
            return Err(crate::Gap9Error::InvalidConfig("frequency must be positive".into()));
        }
        if self.l1_bytes == 0 || self.l2_bytes == 0 || self.l3_bytes == 0 {
            return Err(crate::Gap9Error::InvalidConfig("memory sizes must be nonzero".into()));
        }
        if self.dma_l2_bytes_per_cycle <= 0.0
            || self.dma_l3_bytes_per_cycle <= 0.0
            || self.conv_macs_per_core_cycle <= 0.0
            || self.linear_macs_per_core_cycle <= 0.0
            || self.training_macs_per_core_cycle <= 0.0
        {
            return Err(crate::Gap9Error::InvalidConfig(
                "bandwidths and throughputs must be positive".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_gap9_product_brief_structure() {
        let config = Gap9Config::default();
        config.validate().unwrap();
        assert_eq!(config.cluster_cores, 8);
        assert_eq!(config.l1_bytes, 131_072);
        assert_eq!(config.l3_bytes, 8 * 1024 * 1024);
        assert!((config.frequency_hz - 240e6).abs() < 1.0);
        assert!((config.voltage_v - 0.65).abs() < 1e-9);
    }

    #[test]
    fn cycle_conversion() {
        let config = Gap9Config::default();
        // 240k cycles at 240 MHz = 1 ms.
        assert!((config.cycles_to_ms(240_000.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let config = Gap9Config { cluster_cores: 0, ..Gap9Config::default() };
        assert!(config.validate().is_err());
        let config = Gap9Config { dma_l3_bytes_per_cycle: 0.0, ..Gap9Config::default() };
        assert!(config.validate().is_err());
        let config = Gap9Config { l1_bytes: 0, ..Gap9Config::default() };
        assert!(config.validate().is_err());
    }

    #[test]
    fn idle_plus_cores_is_within_power_envelope() {
        // The calibrated power constants keep an 8-core inference run within
        // the paper's ~50 mW envelope.
        let config = Gap9Config::default();
        let inference = config.leakage_mw + 8.0 * config.core_dynamic_mw + config.dma_mw;
        assert!(inference < 50.0, "inference power {inference} mW");
        let training = inference + config.training_extra_mw;
        assert!(training < 55.0, "training power {training} mW");
    }
}
