//! Converts trained networks into deployment workloads (the DORY role in the
//! paper's flow).

use crate::{KernelClass, LayerWorkload, NetworkWorkload};
use ofscil_nn::models::Backbone;
use ofscil_nn::profile::layer_summaries;

/// Deploys a backbone for int8 execution at the given input resolution: every
/// top-level layer (or block) becomes one [`LayerWorkload`] with int8 weight
/// and activation byte counts.
pub fn deploy_backbone(backbone: &Backbone, height: usize, width: usize) -> NetworkWorkload {
    let summaries = layer_summaries(backbone, height, width);
    let layers = summaries
        .into_iter()
        .map(|summary| {
            let kernel = classify(&summary.name, summary.macs);
            let parallel_units = match kernel {
                KernelClass::Linear => summary.output_elements().max(1),
                _ => summary.output_spatial().max(1),
            };
            LayerWorkload {
                kernel,
                macs: summary.macs,
                weight_bytes: summary.weight_params,
                input_bytes: summary.input_elements(),
                output_bytes: summary.output_elements(),
                parallel_units,
                name: summary.name,
            }
        })
        .collect();
    NetworkWorkload { name: backbone.name.clone(), layers, force_l3_weights: false }
}

/// Deploys the FCR projection (a single `d_a × d_p` fully connected layer)
/// for int8 execution.
///
/// The FCR shares the on-chip L2 with the backbone weights, which already
/// overflow it, so its weights are streamed from L3 — this is the ~3 ms /
/// 328 kB transfer the paper highlights as the FCR bottleneck.
pub fn deploy_fcr(feature_dim: usize, projection_dim: usize) -> NetworkWorkload {
    let macs = (feature_dim * projection_dim) as u64;
    NetworkWorkload {
        name: format!("FCR {feature_dim}x{projection_dim}"),
        force_l3_weights: true,
        layers: vec![LayerWorkload {
            name: "fcr".into(),
            kernel: KernelClass::Linear,
            macs,
            weight_bytes: macs + projection_dim as u64,
            input_bytes: feature_dim as u64,
            output_bytes: projection_dim as u64,
            parallel_units: projection_dim as u64,
        }],
    }
}

fn classify(name: &str, macs: u64) -> KernelClass {
    if name.starts_with("dwconv") {
        KernelClass::Depthwise
    } else if name.starts_with("conv2d")
        || name.starts_with("inverted_residual")
        || name.starts_with("resnet_block")
    {
        KernelClass::Convolution
    } else if name.starts_with("linear") || name.starts_with("fcr") {
        KernelClass::Linear
    } else if macs == 0 {
        KernelClass::MemoryBound
    } else {
        KernelClass::Convolution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofscil_nn::models::{micro_backbone, mobilenet_v2, resnet12, MobileNetVariant};
    use ofscil_tensor::SeedRng;

    #[test]
    fn micro_backbone_deploys() {
        let mut rng = SeedRng::new(0);
        let backbone = micro_backbone(&mut rng);
        let workload = deploy_backbone(&backbone, 16, 16);
        assert!(!workload.is_empty());
        assert_eq!(workload.total_macs(), backbone.macs(16, 16));
        assert!(workload.total_weight_bytes() > 0);
        // Kernel classes are sensible: convs plus memory-bound layers.
        assert!(workload.layers.iter().any(|l| l.kernel == KernelClass::Convolution));
        assert!(workload.layers.iter().any(|l| l.kernel == KernelClass::MemoryBound));
    }

    #[test]
    fn mobilenet_deployment_matches_paper_scale() {
        let mut rng = SeedRng::new(0);
        let backbone = mobilenet_v2(MobileNetVariant::X4, &mut rng);
        let workload = deploy_backbone(&backbone, 32, 32);
        // ~2.2 M int8 weight bytes and ~149 M MACs (Table I).
        let weights_mb = workload.total_weight_bytes() as f64 / 1e6;
        assert!((1.8..3.0).contains(&weights_mb), "weights {weights_mb} MB");
        let macs_m = workload.total_macs() as f64 / 1e6;
        assert!((90.0..260.0).contains(&macs_m), "macs {macs_m} M");
    }

    #[test]
    fn resnet12_deploys_with_larger_weights() {
        let mut rng = SeedRng::new(0);
        let mobilenet = deploy_backbone(&mobilenet_v2(MobileNetVariant::X1, &mut rng), 32, 32);
        let resnet = deploy_backbone(&resnet12(&mut rng), 32, 32);
        assert!(resnet.total_weight_bytes() > 4 * mobilenet.total_weight_bytes());
        assert!(resnet.total_macs() > mobilenet.total_macs());
    }

    #[test]
    fn fcr_workload_is_a_single_linear_layer() {
        let fcr = deploy_fcr(1280, 256);
        assert_eq!(fcr.num_layers(), 1);
        assert_eq!(fcr.total_macs(), 1280 * 256);
        // 328 kB of int8 weights — the L3 transfer the paper highlights.
        let kb = fcr.total_weight_bytes() as f64 / 1000.0;
        assert!((327.0..329.0).contains(&kb), "fcr weights {kb} kB");
        assert_eq!(fcr.layers[0].kernel, KernelClass::Linear);
        assert_eq!(fcr.layers[0].parallel_units, 256);
    }
}
