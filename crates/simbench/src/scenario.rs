//! The scenario engine: the registry of adversarial workload scenarios, the
//! per-scenario report type, and the glue that turns a run into one
//! trajectory line for [`crate::record`].

use std::fmt;
use std::time::Instant;

use crate::record::{Gate, Json};

/// Simbench's error type: a stage description plus the underlying failure.
/// Scenarios cross four crates' error types (serve, wire, router, core), so
/// everything funnels into one displayable wrapper via [`Ctx::ctx`].
#[derive(Debug)]
pub struct SimError(pub String);

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SimError {}

/// Result alias used throughout the crate.
pub type SimResult<T> = Result<T, SimError>;

/// Attaches a stage description while converting any displayable error.
pub trait Ctx<T> {
    /// Maps the error into a [`SimError`] prefixed with `what`.
    fn ctx(self, what: &str) -> SimResult<T>;
}

impl<T, E: fmt::Display> Ctx<T> for Result<T, E> {
    fn ctx(self, what: &str) -> SimResult<T> {
        self.map_err(|e| SimError(format!("{what}: {e}")))
    }
}

/// Builds a [`SimError`] directly from a condition description.
pub fn sim_err(what: impl Into<String>) -> SimError {
    SimError(what.into())
}

/// One recorded metric: key, value, and how the regression gate treats it.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Metric name within the scenario's JSON object.
    pub key: &'static str,
    /// Recorded value.
    pub value: Json,
    /// Gate policy for `--check`.
    pub gate: Gate,
}

/// The outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name (the key in the trajectory line's `scenarios` object).
    pub name: &'static str,
    /// Recorded metrics in emission order.
    pub metrics: Vec<Metric>,
}

impl ScenarioReport {
    /// Starts an empty report.
    pub fn new(name: &'static str) -> Self {
        ScenarioReport { name, metrics: Vec::new() }
    }

    /// Records an integer metric.
    pub fn int(&mut self, key: &'static str, value: i64, gate: Gate) {
        self.metrics.push(Metric { key, value: Json::Int(value), gate });
    }

    /// Records a float metric.
    pub fn float(&mut self, key: &'static str, value: f64, gate: Gate) {
        self.metrics.push(Metric { key, value: Json::Float(value), gate });
    }

    /// Records an arbitrary JSON metric.
    pub fn value(&mut self, key: &'static str, value: Json, gate: Gate) {
        self.metrics.push(Metric { key, value, gate });
    }

    /// The scenario's JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.metrics.iter().map(|m| (m.key.to_string(), m.value.clone())).collect(),
        )
    }
}

/// Per-scenario run context: the seed, the timing switch, and the request
/// instrumentation scenarios feed.
pub struct ScenarioCtx {
    /// Base seed of the whole run (scenarios derive their own streams via
    /// [`ScenarioCtx::rng_seed`], so adding a scenario never perturbs the
    /// others' traces).
    pub seed: u64,
    /// When `true`, wall-clock throughput/latency metrics are measured,
    /// recorded and gated with slack bands; when `false` they are recorded
    /// as `null` (and left ungated) so the output stays byte-identical
    /// across runs.
    pub timing: bool,
    scenario: &'static str,
    requests: u64,
    latencies_us: Vec<u64>,
    started: Instant,
}

impl ScenarioCtx {
    fn new(seed: u64, timing: bool, scenario: &'static str) -> Self {
        ScenarioCtx {
            seed,
            timing,
            scenario,
            requests: 0,
            latencies_us: Vec::new(),
            started: Instant::now(),
        }
    }

    /// A scenario-specific RNG seed: the run seed folded with the scenario
    /// name (FNV-1a), so every scenario replays its own independent stream.
    pub fn rng_seed(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.scenario.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^ self.seed
    }

    /// Runs one request closure, counting it and (in timing mode) recording
    /// its latency.
    pub fn timed<T>(&mut self, f: impl FnOnce() -> T) -> T {
        self.requests += 1;
        if !self.timing {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.latencies_us.push(start.elapsed().as_micros() as u64);
        out
    }

    /// Timing summary appended to every report: `(rps, p99_us)`, both `null`
    /// unless timing mode measured them.
    fn timing_metrics(&self) -> (Json, Json) {
        if !self.timing || self.requests == 0 {
            return (Json::Null, Json::Null);
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        let rps =
            if elapsed > 0.0 { Json::Float(self.requests as f64 / elapsed) } else { Json::Null };
        let p99 = if self.latencies_us.is_empty() {
            Json::Null
        } else {
            let mut sorted = self.latencies_us.clone();
            sorted.sort_unstable();
            let idx = (sorted.len() - 1) * 99 / 100;
            Json::Int(sorted[idx] as i64)
        };
        (rps, p99)
    }
}

/// A registered scenario.
pub struct Scenario {
    /// Name used in `--scenario` selectors and the trajectory line.
    pub name: &'static str,
    /// One-line description for `--list`.
    pub summary: &'static str,
    /// Whether the scenario is part of the CI `smoke` subset.
    pub smoke: bool,
    /// The implementation.
    pub run: fn(&mut ScenarioCtx) -> SimResult<ScenarioReport>,
}

/// Every scenario, in trajectory emission order.
pub fn scenarios() -> &'static [Scenario] {
    &[
        Scenario {
            name: "zipf_mixed",
            summary: "Zipfian tenant popularity over mixed infer/learn traffic (in-process)",
            smoke: true,
            run: crate::scenarios::zipf_mixed,
        },
        Scenario {
            name: "diurnal",
            summary: "raised-cosine daily load curve against a wire server",
            smoke: false,
            run: crate::scenarios::diurnal,
        },
        Scenario {
            name: "learn_storm",
            summary: "bursty learn storms with snapshot/replication consistency checks",
            smoke: false,
            run: crate::scenarios::learn_storm,
        },
        Scenario {
            name: "drift",
            summary: "class-distribution drift: phased onboarding with recency-hot queries",
            smoke: false,
            run: crate::scenarios::drift,
        },
        Scenario {
            name: "byzantine_frames",
            summary: "malformed/truncated frames against a router + 2-shard topology",
            smoke: true,
            run: crate::scenarios::byzantine_frames,
        },
        Scenario {
            name: "budget_exhaustion",
            summary: "admission-control exhaustion attack; accepted/rejected conservation",
            smoke: false,
            run: crate::scenarios::budget_exhaustion,
        },
        Scenario {
            name: "stale_replay",
            summary: "stale repl-seq import replay; sequence monotonicity defense",
            smoke: false,
            run: crate::scenarios::stale_replay,
        },
        Scenario {
            name: "chaos_recovery",
            summary: "kill 1 of 3 shards mid-burst; the control plane auto-heals, zero manual calls",
            smoke: false,
            run: crate::scenarios::chaos_recovery,
        },
        Scenario {
            name: "obs_soak",
            summary: "durable-obs soak: spill GC, rollup contract, torn-tail kill + rehydrate",
            smoke: false,
            run: crate::scenarios::obs_soak,
        },
        Scenario {
            name: "stream_soak",
            summary: "live-tail soak: drop-and-count shed, cursor resume splice, cluster stream convergence",
            smoke: false,
            run: crate::scenarios::stream_soak,
        },
        Scenario {
            name: "audit",
            summary: "FSCIL learning-quality audit through the serve path vs NCM/ETF baselines",
            smoke: true,
            run: crate::audit::audit,
        },
    ]
}

/// Resolves a `--scenario` selector (`all`, `smoke`, or one scenario name).
///
/// # Errors
///
/// Returns a [`SimError`] naming the valid selectors for unknown names.
pub fn select(selector: &str) -> SimResult<Vec<&'static Scenario>> {
    let all = scenarios();
    match selector {
        "all" => Ok(all.iter().collect()),
        "smoke" => Ok(all.iter().filter(|s| s.smoke).collect()),
        name => all
            .iter()
            .find(|s| s.name == name)
            .map(|s| vec![s])
            .ok_or_else(|| {
                let names: Vec<&str> = all.iter().map(|s| s.name).collect();
                sim_err(format!(
                    "unknown scenario {name:?}; valid selectors: all, smoke, {}",
                    names.join(", ")
                ))
            }),
    }
}

/// The outcome of a full run: the trajectory line plus the gates collected
/// from every scenario report (what `--check` compares against the committed
/// line).
pub struct RunOutcome {
    /// The JSON line to append to the trajectory file.
    pub line: Json,
    /// `(scenario, metric, gate)` triples for [`crate::record::compare_runs`].
    pub gates: Vec<(String, String, Gate)>,
}

/// Runs the selected scenarios and assembles the trajectory line. `progress`
/// is invoked before each scenario with its name (the CLI prints it; tests
/// pass a no-op).
///
/// # Errors
///
/// Fails on the first scenario error — a scenario that cannot uphold its own
/// invariants (e.g. a hostile frame that got accepted) is a bug, not a data
/// point.
pub fn run(
    selected: &[&'static Scenario],
    seed: u64,
    timing: bool,
    mut progress: impl FnMut(&str),
) -> SimResult<RunOutcome> {
    let mut scenario_objects = Vec::new();
    let mut gates = Vec::new();
    for scenario in selected {
        progress(scenario.name);
        let mut ctx = ScenarioCtx::new(seed, timing, scenario.name);
        let mut report = (scenario.run)(&mut ctx)?;
        let (rps, p99) = ctx.timing_metrics();
        // Measured timing gets wide slack bands (throughput may halve,
        // latency may double, before the gate trips — CI machines are
        // noisy); the deterministic `null`s stay ungated so default
        // trajectory lines remain byte-stable.
        let rps_gate = match rps {
            Json::Float(v) => Gate::AtLeast { slack: v * 0.5 },
            _ => Gate::None,
        };
        let p99_gate = match p99 {
            Json::Int(v) => Gate::AtMost { slack: v as f64 },
            _ => Gate::None,
        };
        report.value("rps", rps, rps_gate);
        report.value("p99_us", p99, p99_gate);
        for metric in &report.metrics {
            if metric.gate != Gate::None {
                gates.push((scenario.name.to_string(), metric.key.to_string(), metric.gate));
            }
        }
        scenario_objects.push((scenario.name.to_string(), report.to_json()));
    }
    let line = Json::Obj(vec![
        ("bench".to_string(), Json::Str("simbench".to_string())),
        ("seed".to_string(), Json::Int(seed as i64)),
        ("scenarios".to_string(), Json::Obj(scenario_objects)),
    ]);
    Ok(RunOutcome { line, gates })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectors_resolve_and_reject() {
        assert_eq!(select("all").unwrap().len(), scenarios().len());
        let smoke = select("smoke").unwrap();
        let names: Vec<&str> = smoke.iter().map(|s| s.name).collect();
        // The CI smoke subset must include one byzantine scenario and the
        // learning-quality audit.
        assert!(names.contains(&"byzantine_frames"));
        assert!(names.contains(&"audit"));
        assert_eq!(select("drift").unwrap()[0].name, "drift");
        assert!(select("nope").is_err());
    }

    #[test]
    fn scenario_rng_seeds_are_distinct_per_scenario_and_seed() {
        let a = ScenarioCtx::new(7, false, "zipf_mixed").rng_seed();
        let b = ScenarioCtx::new(7, false, "diurnal").rng_seed();
        let c = ScenarioCtx::new(8, false, "zipf_mixed").rng_seed();
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And stable: same inputs, same stream.
        assert_eq!(a, ScenarioCtx::new(7, false, "zipf_mixed").rng_seed());
    }

    #[test]
    fn timing_mode_gates_throughput_and_latency_with_slack_bands() {
        fn tiny(ctx: &mut ScenarioCtx) -> SimResult<ScenarioReport> {
            let mut report = ScenarioReport::new("tiny");
            ctx.timed(|| std::thread::sleep(std::time::Duration::from_micros(200)));
            report.int("done", 1, Gate::Exact);
            Ok(report)
        }
        static TINY: Scenario =
            Scenario { name: "tiny", summary: "one timed no-op", smoke: false, run: tiny };

        // Deterministic mode: timing fields are null and ungated, so the
        // line is byte-stable and --check never looks at them.
        let plain = run(&[&TINY], 7, false, |_| {}).unwrap();
        let scenario = plain.line.get("scenarios").unwrap().get("tiny").unwrap();
        assert_eq!(scenario.get("rps"), Some(&Json::Null));
        assert_eq!(scenario.get("p99_us"), Some(&Json::Null));
        assert!(!plain.gates.iter().any(|(_, metric, _)| metric == "rps" || metric == "p99_us"));

        // Timing mode: both fields are measured and picked up by the gate
        // set — rps as a floor (may halve), p99 as a ceiling (may double).
        let timed = run(&[&TINY], 7, true, |_| {}).unwrap();
        let scenario = timed.line.get("scenarios").unwrap().get("tiny").unwrap();
        let rps = scenario.get("rps").and_then(Json::as_f64).expect("measured rps");
        let p99 = scenario.get("p99_us").and_then(Json::as_f64).expect("measured p99");
        assert!(rps > 0.0 && p99 > 0.0);
        let gate_for = |key: &str| {
            timed
                .gates
                .iter()
                .find(|(s, metric, _)| s == "tiny" && metric == key)
                .map(|(_, _, gate)| *gate)
        };
        assert_eq!(gate_for("rps"), Some(Gate::AtLeast { slack: rps * 0.5 }));
        assert_eq!(gate_for("p99_us"), Some(Gate::AtMost { slack: p99 }));
    }

    #[test]
    fn reports_collect_gates_and_render_in_order() {
        let mut report = ScenarioReport::new("demo");
        report.int("count", 3, Gate::Exact);
        report.float("accuracy", 0.5, Gate::AtLeast { slack: 0.02 });
        report.value("rps", Json::Null, Gate::None);
        assert_eq!(
            report.to_json().render(),
            "{\"count\":3,\"accuracy\":0.5,\"rps\":null}"
        );
    }
}
