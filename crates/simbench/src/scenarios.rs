//! The adversarial workload scenarios.
//!
//! Each scenario drives real serving machinery — the in-process
//! [`ServeRuntime`], a socket-backed [`WireServer`], or a router in front of
//! two shard processes — with a deterministic seeded trace, asserts its own
//! invariants inline (a hostile frame that gets *accepted* fails the run,
//! it does not become a data point), and returns a [`ScenarioReport`] of
//! metrics for the trajectory line.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ofscil::prelude::*;
use ofscil::serve::traffic;
use ofscil::wire::codec::{decode_response, encode_request, WireRequest};
use ofscil::wire::frame::{parse_frame, DEFAULT_MAX_PAYLOAD, HEADER_LEN};
use ofscil::router::harness::ShardProcess;

use crate::record::Gate;
use crate::samplers::{Diurnal, DriftSchedule, Zipfian};
use crate::scenario::{sim_err, Ctx, ScenarioCtx, ScenarioReport, SimResult};

/// Image side used by the traffic-helper scenarios (matches the serving
/// examples and the router test suite).
const SIDE: usize = 8;
/// Projection dimension of the scenario models.
const PROJ: usize = 16;
/// Weight seed shared by every scenario deployment: shards must agree on
/// weights so migrated/replicated state stays bit-identical.
const WEIGHT_SEED: u64 = 11;

fn scenario_model() -> OFscilModel {
    let mut rng = SeedRng::new(WEIGHT_SEED);
    OFscilModel::new(BackboneKind::Micro, PROJ, &mut rng)
}

fn registry_with(names: &[&str]) -> SimResult<Arc<LearnerRegistry>> {
    let registry = LearnerRegistry::new();
    for name in names {
        registry
            .register(DeploymentSpec::new(name, (SIDE, SIDE)), scenario_model())
            .ctx("register deployment")?;
    }
    Ok(Arc::new(registry))
}

fn serve_config() -> ServeConfig {
    ServeConfig { workers: 2, ..ServeConfig::default() }
}

fn predicted(response: ServeResponse) -> SimResult<usize> {
    match response {
        ServeResponse::Prediction { class, .. } => Ok(class),
        other => Err(sim_err(format!("expected a prediction, got {other:?}"))),
    }
}

/// Zipfian tenant popularity over mixed infer/learn traffic against the
/// in-process runtime: the hot tenant's share must track the analytic
/// distribution, every accepted request must land in the throughput
/// counters, and predictions on the separable traffic classes must be
/// correct. The runtime runs with an observability sink attached, and the
/// event-store counters ride along in the trajectory record — dropped
/// events in a non-adversarial run are a regression.
pub fn zipf_mixed(ctx: &mut ScenarioCtx) -> SimResult<ScenarioReport> {
    const TENANTS: [&str; 4] = ["tenant-0", "tenant-1", "tenant-2", "tenant-3"];
    const TICKS: usize = 400;
    let registry = registry_with(&TENANTS)?;
    let zipf = Zipfian::new(TENANTS.len(), 1.1);
    let mut rng = SeedRng::new(ctx.rng_seed());
    let obs = Obs::new(ObsConfig::default());

    let mut per_tenant = [0u64; 4];
    let mut learns = 0u64;
    let mut infers = 0u64;
    let mut correct = 0u64;
    ServeRuntime::run_observed(
        &registry,
        &serve_config(),
        None,
        None,
        Some(obs.sink()),
        |client| -> SimResult<()> {
            for tenant in TENANTS {
                ctx.timed(|| {
                    client.call(ServeRequest::LearnOnline {
                        deployment: tenant.into(),
                        batch: traffic::support_batch(SIDE, &[0, 1, 2], 3),
                    })
                })
                .ctx("seed tenant classes")?;
                learns += 1;
            }
            for _ in 0..TICKS {
                let tenant = zipf.sample(&mut rng);
                per_tenant[tenant] += 1;
                let deployment = TENANTS[tenant].to_string();
                if rng.chance(0.2) {
                    let class = rng.below(3);
                    ctx.timed(|| {
                        client.call(ServeRequest::LearnOnline {
                            deployment,
                            batch: traffic::support_batch(SIDE, &[class], 2),
                        })
                    })
                    .ctx("tick learn")?;
                    learns += 1;
                } else {
                    let class = rng.below(3);
                    let response = ctx
                        .timed(|| {
                            client.call(ServeRequest::Infer {
                                deployment,
                                image: traffic::class_image(SIDE, class, 0.01),
                            })
                        })
                        .ctx("tick infer")?;
                    infers += 1;
                    if predicted(response)? == class {
                        correct += 1;
                    }
                }
            }
            Ok(())
        },
    )
    .ctx("serve runtime")??;

    // Conservation: what the workload offered is exactly what the per-tenant
    // throughput counters recorded — nothing lost, nothing double-counted.
    let mut counted = 0u64;
    for tenant in TENANTS {
        let stats = registry.stats(tenant).ctx("tenant stats")?;
        counted += stats.accepted();
        if stats.rejected() != 0 {
            return Err(sim_err(format!("unlimited-budget tenant {tenant} rejected work")));
        }
    }
    if counted != learns + infers {
        return Err(sim_err(format!(
            "accepted counters {counted} != offered {}",
            learns + infers
        )));
    }

    // Every accepted request emitted exactly one event; the sink's queue
    // comfortably outsizes this trace, so a single shed event is a bug.
    if !obs.flush(Duration::from_secs(5)) {
        return Err(sim_err("obs collector failed to drain the event queue"));
    }
    let obs_counters = obs.counters();
    if obs_counters.appended != learns + infers {
        return Err(sim_err(format!(
            "obs store appended {} events, expected one per accepted request ({})",
            obs_counters.appended,
            learns + infers
        )));
    }

    let mut report = ScenarioReport::new("zipf_mixed");
    report.int("requests", (learns + infers) as i64, Gate::Exact);
    report.int("learns", learns as i64, Gate::Exact);
    report.int("infers", infers as i64, Gate::Exact);
    report.int("hot_tenant_requests", per_tenant[0] as i64, Gate::Exact);
    report.float("hot_tenant_share", per_tenant[0] as f64 / TICKS as f64, Gate::None);
    report.float("hot_tenant_share_expected", zipf.expected_share(0), Gate::None);
    report.float("accuracy", correct as f64 / infers as f64, Gate::AtLeast { slack: 0.02 });
    report.int("obs_events", obs_counters.appended as i64, Gate::Exact);
    report.int("obs_dropped", obs_counters.dropped as i64, Gate::Exact);
    Ok(report)
}

/// A raised-cosine daily load curve against a socket-backed wire server:
/// offered load per tick follows the curve, and the realized mean must match
/// the closed-form mean of the sampler.
pub fn diurnal(ctx: &mut ScenarioCtx) -> SimResult<ScenarioReport> {
    const TICKS: u64 = 48;
    let registry = registry_with(&["diurnal"])?;
    let curve = Diurnal { floor: 1.0, peak: 6.0, period: 24.0 };
    let mut rng = SeedRng::new(ctx.rng_seed());

    let mut offered = 0u64;
    let mut peak_tick = 0u64;
    let mut correct = 0u64;
    WireServer::run(&registry, &WireConfig::tcp_loopback(), |handle| -> SimResult<()> {
        let mut client = WireClient::connect(handle.addr()).ctx("connect")?;
        ctx.timed(|| {
            client.call(ServeRequest::LearnOnline {
                deployment: "diurnal".into(),
                batch: traffic::support_batch(SIDE, &[0, 1, 2], 3),
            })
        })
        .ctx("seed classes")?;
        for t in 0..TICKS {
            let load = curve.requests_at(t);
            peak_tick = peak_tick.max(load);
            for _ in 0..load {
                let class = rng.below(3);
                let response = ctx
                    .timed(|| {
                        client.call(ServeRequest::Infer {
                            deployment: "diurnal".into(),
                            image: traffic::class_image(SIDE, class, 0.01),
                        })
                    })
                    .ctx("diurnal infer")?;
                offered += 1;
                if predicted(response)? == class {
                    correct += 1;
                }
            }
        }
        Ok(())
    })
    .ctx("wire server")??;

    let measured_mean = offered as f64 / TICKS as f64;
    // Two full periods of integer-rounded draws: the realized mean must sit
    // within one request/tick of the closed form.
    if (measured_mean - curve.mean_level()).abs() > 1.0 {
        return Err(sim_err(format!(
            "diurnal mean drifted: measured {measured_mean}, analytic {}",
            curve.mean_level()
        )));
    }
    let mut report = ScenarioReport::new("diurnal");
    report.int("ticks", TICKS as i64, Gate::Exact);
    report.int("offered", offered as i64, Gate::Exact);
    report.int("peak_tick_load", peak_tick as i64, Gate::Exact);
    report.float("mean_per_tick", measured_mean, Gate::None);
    report.float("mean_level_analytic", curve.mean_level(), Gate::None);
    report.float("accuracy", correct as f64 / offered as f64, Gate::AtLeast { slack: 0.02 });
    Ok(report)
}

/// Bursty learn-storms against a wire server: storms of redundant learns on
/// a growing class set, with snapshot-size monotonicity and replication-
/// sequence bookkeeping checked between bursts.
pub fn learn_storm(ctx: &mut ScenarioCtx) -> SimResult<ScenarioReport> {
    const STORMS: usize = 6;
    const LEARNS_PER_STORM: usize = 8;
    const INFERS_PER_LULL: usize = 10;
    let registry = registry_with(&["storm"])?;
    let mut rng = SeedRng::new(ctx.rng_seed());

    let mut learns = 0u64;
    let mut infers = 0u64;
    let mut snapshot_sizes = Vec::new();
    WireServer::run(&registry, &WireConfig::tcp_loopback(), |handle| -> SimResult<()> {
        let mut client = WireClient::connect(handle.addr()).ctx("connect")?;
        for storm in 0..STORMS {
            // Each storm introduces three new classes, then hammers them
            // with redundant learns (the bursty part).
            let classes = [3 * storm, 3 * storm + 1, 3 * storm + 2];
            for _ in 0..LEARNS_PER_STORM {
                ctx.timed(|| {
                    client.call(ServeRequest::LearnOnline {
                        deployment: "storm".into(),
                        batch: traffic::support_batch(SIDE, &classes, 2),
                    })
                })
                .ctx("storm learn")?;
                learns += 1;
            }
            for _ in 0..INFERS_PER_LULL {
                let class = classes[rng.below(classes.len())];
                ctx.timed(|| {
                    client.call(ServeRequest::Infer {
                        deployment: "storm".into(),
                        image: traffic::class_image(SIDE, class, 0.01),
                    })
                })
                .ctx("lull infer")?;
                infers += 1;
            }
            let response = ctx
                .timed(|| client.call(ServeRequest::Snapshot { deployment: "storm".into() }))
                .ctx("storm snapshot")?;
            match response {
                ServeResponse::Snapshot { bytes } => snapshot_sizes.push(bytes.len()),
                other => return Err(sim_err(format!("expected snapshot, got {other:?}"))),
            }
        }
        Ok(())
    })
    .ctx("wire server")??;

    if !snapshot_sizes.windows(2).all(|w| w[0] < w[1]) {
        return Err(sim_err(format!(
            "snapshot sizes must grow with the class set: {snapshot_sizes:?}"
        )));
    }
    let seq = registry.replication_seq("storm").ctx("replication seq")?;
    if seq != learns {
        return Err(sim_err(format!("replication seq {seq} != committed learns {learns}")));
    }
    let stats = registry.stats("storm").ctx("storm stats")?;
    let mut report = ScenarioReport::new("learn_storm");
    report.int("storms", STORMS as i64, Gate::Exact);
    report.int("learns", learns as i64, Gate::Exact);
    report.int("infers", infers as i64, Gate::Exact);
    report.int("classes_final", stats.classes as i64, Gate::Exact);
    report.int("repl_seq_final", seq as i64, Gate::Exact);
    report.int(
        "snapshot_bytes_final",
        *snapshot_sizes.last().expect("at least one storm") as i64,
        Gate::Exact,
    );
    Ok(report)
}

/// Class-distribution drift on real FSCIL data: classes onboard in phases
/// (base classes, then one session's worth at a time) while query traffic
/// concentrates on the newest classes — measuring whether accuracy survives
/// the moving distribution.
pub fn drift(ctx: &mut ScenarioCtx) -> SimResult<ScenarioReport> {
    const QUERIES_PER_PHASE: usize = 60;
    let mut config = FscilConfig::micro();
    config.synthetic.num_classes = 9;
    config.num_base_classes = 3;
    config.num_sessions = 3;
    config.ways = 2;
    config.base_train_per_class = 8;
    config.test_per_class = 4;
    let side = config.synthetic.image_size;
    let benchmark = FscilBenchmark::generate(&config, ctx.rng_seed()).ctx("benchmark")?;

    let registry = LearnerRegistry::new();
    let mut weight_rng = SeedRng::new(WEIGHT_SEED);
    registry
        .register(
            DeploymentSpec::new("drift", (side, side)),
            OFscilModel::new(BackboneKind::Micro, PROJ, &mut weight_rng),
        )
        .ctx("register drift deployment")?;

    let mut phases = vec![benchmark.base_train().classes()];
    for session in benchmark.sessions() {
        phases.push(session.classes.clone());
    }
    let schedule = DriftSchedule::new(phases, 0.7);
    let mut rng = SeedRng::new(ctx.rng_seed() ^ 1);
    let test = benchmark.test();

    let mut queries = 0u64;
    let mut correct = 0u64;
    let mut hot_hits = 0u64;
    let mut phase_accuracies = Vec::new();
    ServeRuntime::run(&registry, &serve_config(), |client| -> SimResult<()> {
        for phase in 0..schedule.num_phases() {
            // Onboard this phase's classes: per-class batches for the base
            // phase (mirroring the FSCIL protocol), the session's support
            // batch afterwards.
            if phase == 0 {
                let base = benchmark.base_train();
                for class in base.classes() {
                    let batch = base.batch(&base.indices_of_class(class)).ctx("base batch")?;
                    ctx.timed(|| {
                        client.call(ServeRequest::LearnOnline {
                            deployment: "drift".into(),
                            batch,
                        })
                    })
                    .ctx("base learn")?;
                }
            } else {
                let support =
                    benchmark.sessions()[phase - 1].support.full_batch().ctx("support")?;
                ctx.timed(|| {
                    client.call(ServeRequest::LearnOnline {
                        deployment: "drift".into(),
                        batch: support,
                    })
                })
                .ctx("session learn")?;
            }
            // Query traffic for this phase, recency-weighted.
            let mut phase_correct = 0u64;
            for _ in 0..QUERIES_PER_PHASE {
                let class = schedule.sample_class(phase, &mut rng);
                if schedule.introduced(phase).contains(&class) {
                    hot_hits += 1;
                }
                let indices = test.indices_of_class(class);
                let sample = test
                    .get(indices[rng.below(indices.len())])
                    .ctx("test sample")?;
                let response = ctx
                    .timed(|| {
                        client.call(ServeRequest::Infer {
                            deployment: "drift".into(),
                            image: sample.image.clone(),
                        })
                    })
                    .ctx("drift infer")?;
                queries += 1;
                if predicted(response)? == sample.label {
                    phase_correct += 1;
                    correct += 1;
                }
            }
            phase_accuracies.push(phase_correct as f64 / QUERIES_PER_PHASE as f64);
        }
        Ok(())
    })
    .ctx("serve runtime")??;

    let stats = registry.stats("drift").ctx("drift stats")?;
    let mut report = ScenarioReport::new("drift");
    report.int("phases", schedule.num_phases() as i64, Gate::Exact);
    report.int("queries", queries as i64, Gate::Exact);
    report.int("classes_final", stats.classes as i64, Gate::Exact);
    report.float("hot_query_fraction", hot_hits as f64 / queries as f64, Gate::None);
    report.float(
        "accuracy_overall",
        correct as f64 / queries as f64,
        Gate::AtLeast { slack: 0.05 },
    );
    report.float(
        "accuracy_final_phase",
        *phase_accuracies.last().expect("at least one phase"),
        Gate::None,
    );
    Ok(report)
}

/// Applies one seeded hostile mutation to a valid frame. Every mutation
/// guarantees the result is not a prefix-valid frame stream: a parser that
/// accepts any of these has a bug.
fn mutate_frame(frame: &[u8], rng: &mut SeedRng) -> (&'static str, Vec<u8>) {
    let mut bytes = frame.to_vec();
    match rng.below(4) {
        0 => {
            // Single bit flip anywhere in the frame.
            let byte = rng.below(bytes.len());
            bytes[byte] ^= 1 << rng.below(8);
            ("bitflip", bytes)
        }
        1 => {
            // Truncate mid-frame (never empty — that is just a clean EOF).
            let keep = 1 + rng.below(bytes.len() - 1);
            bytes.truncate(keep);
            ("truncate", bytes)
        }
        2 => {
            // Tamper with the declared payload length.
            let fake = rng.next_u32();
            bytes[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&fake.to_le_bytes());
            ("length_tamper", bytes)
        }
        _ => {
            // Corrupt the magic so the stream is garbage from byte 0.
            bytes[rng.below(4)] ^= 0xff;
            ("bad_magic", bytes)
        }
    }
}

/// Writes one hostile byte blob to the router and returns `true` when the
/// server rejected it (closed the connection or answered with a typed error
/// frame — never a successful response).
fn deliver_hostile(addr: &std::net::SocketAddr, blob: &[u8]) -> SimResult<bool> {
    let mut stream = TcpStream::connect(addr).ctx("connect hostile")?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ctx("read timeout")?;
    // Ignore write errors: the server may have already torn the connection
    // down after the first corrupt bytes, which is exactly the defense this
    // scenario verifies.
    let _ = stream.write_all(blob);
    let _ = stream.shutdown(Shutdown::Write);
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    // Parse whatever came back: any decodable *successful* response frame
    // means the hostile frame was accepted.
    let mut rest = &response[..];
    while !rest.is_empty() {
        let Ok((kind, payload)) = parse_frame(rest, DEFAULT_MAX_PAYLOAD) else {
            // A half-written reply before the close is still a rejection.
            break;
        };
        match decode_response(kind, payload) {
            Ok(ofscil::wire::WireResponse::Error(_)) | Err(_) => {}
            Ok(_) => return Ok(false),
        }
        let consumed = HEADER_LEN + payload.len() + 4;
        rest = &rest[consumed..];
    }
    Ok(true)
}

/// Byzantine clients against a router + 2-shard topology: seeded mutations
/// of valid frames (bit flips, truncations, length tampering, magic
/// corruption) must all be rejected at the wire layer, while a well-behaved
/// client keeps getting correct answers on the same address — and none of
/// the hostile traffic may leak into the cluster's accepted counters. Both
/// shards run observed, so the barrage doubles as a check that hostile
/// frames never reach the event stores either: the appended count must
/// equal the valid requests exactly, with zero drops.
pub fn byzantine_frames(ctx: &mut ScenarioCtx) -> SimResult<ScenarioReport> {
    const HOSTILE_FRAMES: usize = 40;
    const VALID_AFTER: usize = 10;
    const DEPLOYMENTS: [&str; 2] = ["alpha", "beta"];
    let registries = [registry_with(&DEPLOYMENTS)?, registry_with(&DEPLOYMENTS)?];
    let shard_obs = [Obs::new(ObsConfig::default()), Obs::new(ObsConfig::default())];
    let shards: Vec<ShardProcess> = registries
        .iter()
        .zip(&shard_obs)
        .map(|(r, obs)| {
            ShardProcess::spawn_observed(
                Arc::clone(r),
                WireConfig::tcp_loopback(),
                Some(obs.clone()),
            )
        })
        .collect::<Result<_, _>>()
        .ctx("spawn shards")?;
    let config = RouterConfig::tcp_loopback(shards.iter().map(|s| s.addr().clone()).collect())
        .with_deployments(&DEPLOYMENTS);

    let mut rng = SeedRng::new(ctx.rng_seed());
    let outcome = RouterServer::run(&config, |router| -> SimResult<ScenarioReport> {
        let BoundAddr::Tcp(addr) = router.addr().clone() else {
            return Err(sim_err("router must bind tcp for the byzantine scenario"));
        };
        let mut client = WireClient::connect(router.addr()).ctx("connect valid client")?;
        let mut valid_ok = 0u64;
        for deployment in DEPLOYMENTS {
            ctx.timed(|| {
                client.call(ServeRequest::LearnOnline {
                    deployment: deployment.into(),
                    batch: traffic::support_batch(SIDE, &[0, 1, 2], 3),
                })
            })
            .ctx("seed classes")?;
            valid_ok += 1;
        }

        // Templates covering the three frame shapes clients actually send.
        let templates: Vec<Vec<u8>> = vec![
            encode_request(&WireRequest::Serve(ServeRequest::Stats {
                deployment: "alpha".into(),
            })),
            encode_request(&WireRequest::Serve(ServeRequest::Infer {
                deployment: "beta".into(),
                image: traffic::class_image(SIDE, 1, 0.0),
            })),
            encode_request(&WireRequest::Serve(ServeRequest::LearnOnline {
                deployment: "alpha".into(),
                batch: traffic::support_batch(SIDE, &[1], 1),
            })),
        ];
        let mut rejected = 0u64;
        for _ in 0..HOSTILE_FRAMES {
            let template = &templates[rng.below(templates.len())];
            let (mutation, blob) = mutate_frame(template, &mut rng);
            let ok = ctx.timed(|| deliver_hostile(&addr, &blob))?;
            if !ok {
                return Err(sim_err(format!(
                    "hostile frame ({mutation}) elicited a successful response"
                )));
            }
            rejected += 1;
        }

        // The same address still serves a well-behaved client correctly.
        let mut correct = 0u64;
        for i in 0..VALID_AFTER {
            let class = i % 3;
            let deployment = DEPLOYMENTS[i % 2];
            let response = ctx
                .timed(|| {
                    client.call(ServeRequest::Infer {
                        deployment: deployment.into(),
                        image: traffic::class_image(SIDE, class, 0.01),
                    })
                })
                .ctx("valid infer after barrage")?;
            valid_ok += 1;
            if predicted(response)? == class {
                correct += 1;
            }
        }

        // Hostile frames must not have leaked into the accepted counters:
        // the cluster saw exactly the well-behaved client's requests. The
        // end-of-scenario `cluster_stats` snapshot also lands in the
        // trajectory record — a shard marked unreachable here is a bug.
        let slices = router.cluster_stats();
        let reachable = slices.iter().filter(|slice| slice.reachable).count();
        let accepted: u64 = slices
            .iter()
            .flat_map(|slice| slice.deployments.iter())
            .map(|d| d.accepted())
            .sum();
        if accepted != valid_ok {
            return Err(sim_err(format!(
                "cluster accepted {accepted} requests, expected only the {valid_ok} valid ones"
            )));
        }

        let mut report = ScenarioReport::new("byzantine_frames");
        report.int("hostile_sent", HOSTILE_FRAMES as i64, Gate::Exact);
        report.int("hostile_rejected", rejected as i64, Gate::Exact);
        report.int("valid_requests", valid_ok as i64, Gate::Exact);
        report.int("cluster_accepted", accepted as i64, Gate::Exact);
        report.int("shards_reachable", reachable as i64, Gate::Exact);
        report.float(
            "valid_accuracy",
            correct as f64 / VALID_AFTER as f64,
            Gate::AtLeast { slack: 0.02 },
        );
        Ok(report)
    })
    .ctx("router")??;
    for shard in shards {
        shard.stop();
    }

    // Sum the per-shard event stores: exactly one event per valid request,
    // none for the hostile barrage, and nothing shed by the bounded sinks.
    let mut obs_events = 0u64;
    let mut obs_dropped = 0u64;
    for obs in &shard_obs {
        if !obs.flush(Duration::from_secs(5)) {
            return Err(sim_err("shard obs collector failed to drain"));
        }
        let counters = obs.counters();
        obs_events += counters.appended;
        obs_dropped += counters.dropped;
    }
    let mut outcome = outcome;
    outcome.int("obs_events", obs_events as i64, Gate::Exact);
    outcome.int("obs_dropped", obs_dropped as i64, Gate::Exact);
    Ok(outcome)
}

/// A budget-exhaustion attack through the router: deployments carry an
/// exactly-sized energy budget, the attacker floods past it, and the
/// admission counters must conserve — every offered request is either in
/// the accepted throughput counters or the per-type rejection counters,
/// never both, never neither.
pub fn budget_exhaustion(ctx: &mut ScenarioCtx) -> SimResult<ScenarioReport> {
    const DEPLOYMENTS: [&str; 2] = ["alpha", "beta"];
    let make_registry = || -> SimResult<Arc<LearnerRegistry>> {
        let registry = LearnerRegistry::new();
        for name in DEPLOYMENTS {
            registry
                .register(
                    DeploymentSpec::new(name, (SIDE, SIDE))
                        .with_energy_budget(0.0, BudgetPolicy::Reject),
                    scenario_model(),
                )
                .ctx("register budgeted deployment")?;
        }
        Ok(Arc::new(registry))
    };
    let registries = [make_registry()?, make_registry()?];
    let shards: Vec<ShardProcess> = registries
        .iter()
        .map(|r| ShardProcess::spawn(Arc::clone(r), WireConfig::tcp_loopback()))
        .collect::<Result<_, _>>()
        .ctx("spawn shards")?;
    let config = RouterConfig::tcp_loopback(shards.iter().map(|s| s.addr().clone()).collect())
        .with_deployments(&DEPLOYMENTS);

    let outcome = RouterServer::run(&config, |router| -> SimResult<ScenarioReport> {
        let mut client = WireClient::connect(router.addr()).ctx("connect")?;
        let mut offered = 0u64;
        for name in DEPLOYMENTS {
            let owner = router.shard_for(name).ctx("owner")?;
            let pricing = registries[owner].pricing(name).ctx("pricing")?;
            // Admit exactly two single-sample learns and two infers; the
            // 0.4-pass slack absorbs float noise without admitting a fifth.
            let budget = 2.0 * pricing.learn_sample_mj + 2.4 * pricing.infer_mj;
            registries[owner].top_up(name, budget).ctx("top up")?;

            let learn = |client: &mut WireClient, class: usize| {
                client.call(ServeRequest::LearnOnline {
                    deployment: name.into(),
                    batch: traffic::support_batch(SIDE, &[class], 1),
                })
            };
            let infer = |client: &mut WireClient| {
                client.call(ServeRequest::Infer {
                    deployment: name.into(),
                    image: traffic::class_image(SIDE, 0, 0.0),
                })
            };
            // Two learns and two infers are admitted…
            ctx.timed(|| learn(&mut client, 0)).ctx("admitted learn")?;
            ctx.timed(|| learn(&mut client, 1)).ctx("admitted learn")?;
            ctx.timed(|| infer(&mut client)).ctx("admitted infer")?;
            ctx.timed(|| infer(&mut client)).ctx("admitted infer")?;
            offered += 4;
            // …then the attack flood is refused with typed errors.
            for expect_learn in [false, true] {
                let err = if expect_learn {
                    ctx.timed(|| learn(&mut client, 2)).err()
                } else {
                    ctx.timed(|| infer(&mut client)).err()
                };
                offered += 1;
                match err {
                    Some(WireError::Remote(ServeError::BudgetExhausted { .. })) => {}
                    other => {
                        return Err(sim_err(format!(
                            "expected BudgetExhausted past the budget, got {other:?}"
                        )))
                    }
                }
            }
        }

        let slices = router.cluster_stats();
        let mut accepted = 0u64;
        let mut rejected_infer = 0u64;
        let mut rejected_learn = 0u64;
        for name in DEPLOYMENTS {
            let stats = slices
                .iter()
                .flat_map(|slice| slice.deployments.iter())
                .find(|d| d.name == name && d.accepted() + d.rejected() > 0)
                .ok_or_else(|| sim_err(format!("no active stats for {name}")))?;
            if stats.infer_requests != 2
                || stats.learn_requests != 2
                || stats.rejected_infer != 1
                || stats.rejected_learn != 1
            {
                return Err(sim_err(format!(
                    "admission split off for {name}: {stats:?}"
                )));
            }
            accepted += stats.accepted();
            rejected_infer += stats.rejected_infer;
            rejected_learn += stats.rejected_learn;
        }
        // Conservation across the cluster.
        if accepted + rejected_infer + rejected_learn != offered {
            return Err(sim_err(format!(
                "offered {offered} != accepted {accepted} + rejected \
                 {rejected_infer}+{rejected_learn}"
            )));
        }

        let mut report = ScenarioReport::new("budget_exhaustion");
        report.int("offered", offered as i64, Gate::Exact);
        report.int("accepted", accepted as i64, Gate::Exact);
        report.int("rejected_infer", rejected_infer as i64, Gate::Exact);
        report.int("rejected_learn", rejected_learn as i64, Gate::Exact);
        report.int("conservation_ok", 1, Gate::Exact);
        Ok(report)
    })
    .ctx("router")??;
    for shard in shards {
        shard.stop();
    }
    Ok(outcome)
}

/// Scratch directory for the chaos-recovery standby store (wiped on entry so
/// reruns in the same process tree start clean).
fn chaos_store_dir() -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ofscil-simbench-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

/// Chaos recovery through the self-driving control plane: three shards
/// behind the router, a follower tailing (and advertised for) the shard
/// that owns the first tenant, a Zipf-skewed mixed burst — and then that
/// shard is killed mid-burst. Nobody calls `migrate` or `promote`: the
/// controller has to notice the breaker dwell crossing its threshold,
/// promote the advertised follower and re-point the ring on its own. The
/// scenario then proves every deployment serves reads AND writes again and
/// that the recovery timeline (breaker-open before the stamped promotion)
/// reconstructs from a single routed observability query.
pub fn chaos_recovery(ctx: &mut ScenarioCtx) -> SimResult<ScenarioReport> {
    const TENANTS: [&str; 4] = ["cam-0", "cam-1", "cam-2", "cam-3"];
    const BURST: usize = 60;

    // One shared observability pipeline: shards, router, the promoted
    // primary and the controller all stamp into the same timeline.
    let obs = Obs::new(ObsConfig::default());
    let mut shards: Vec<Option<ShardProcess>> = Vec::new();
    for _ in 0..3 {
        let shard = ShardProcess::spawn_observed(
            registry_with(&TENANTS)?,
            WireConfig::tcp_loopback(),
            Some(obs.clone()),
        )
        .ctx("spawn shard")?;
        shards.push(Some(shard));
    }
    let addrs = shards.iter().map(|s| s.as_ref().expect("live").addr().clone()).collect();
    let config = RouterConfig::tcp_loopback(addrs)
        .with_deployments(&TENANTS)
        .with_obs(obs.clone());

    let zipf = Zipfian::new(TENANTS.len(), 1.1);
    let mut rng = SeedRng::new(ctx.rng_seed());
    let outcome = RouterServer::run(&config, |router| -> SimResult<ScenarioReport> {
        // The victim is whichever shard serves the first tenant; a replica
        // tails its tenants and advertises itself as a promotion candidate.
        let victim = router.shard_for(TENANTS[0]).ctx("victim shard")?;
        let tailed: Vec<&str> = TENANTS
            .iter()
            .copied()
            .filter(|t| router.shard_for(t).map(|s| s == victim).unwrap_or(false))
            .collect();
        let replica_registry = registry_with(&TENANTS)?;
        let follower = FollowerProcess::spawn(
            Arc::clone(&replica_registry),
            FollowerConfig::new(router.shard_addr(victim).ctx("victim addr")?, &tailed)
                .with_advertise(router.addr().clone()),
        )
        .ctx("spawn follower")?;

        // Seed every tenant, then the first half of the burst.
        let mut client = WireClient::connect(router.addr()).ctx("connect")?;
        let mut learns_per = [0u64; 4];
        let mut burst_requests = 0u64;
        for (i, tenant) in TENANTS.iter().enumerate() {
            ctx.timed(|| {
                client.call(ServeRequest::LearnOnline {
                    deployment: (*tenant).into(),
                    batch: traffic::support_batch(SIDE, &[0, 1, 2], 3),
                })
            })
            .ctx("seed tenant")?;
            learns_per[i] += 1;
            burst_requests += 1;
        }
        let mut infers = 0u64;
        let mut correct = 0u64;
        for _ in 0..BURST {
            let tenant = zipf.sample(&mut rng);
            let deployment = TENANTS[tenant].to_string();
            if rng.chance(0.25) {
                let class = rng.below(3);
                ctx.timed(|| {
                    client.call(ServeRequest::LearnOnline {
                        deployment,
                        batch: traffic::support_batch(SIDE, &[class], 2),
                    })
                })
                .ctx("burst learn")?;
                learns_per[tenant] += 1;
            } else {
                let class = rng.below(3);
                let response = ctx
                    .timed(|| {
                        client.call(ServeRequest::Infer {
                            deployment,
                            image: traffic::class_image(SIDE, class, 0.01),
                        })
                    })
                    .ctx("burst infer")?;
                infers += 1;
                if predicted(response)? == class {
                    correct += 1;
                }
            }
            burst_requests += 1;
        }

        // The replica must have caught up on the victim's tenants before
        // the murder, or the promoted primary would serve stale memory.
        let deadline = Instant::now() + Duration::from_secs(30);
        for tenant in &tailed {
            let idx = TENANTS.iter().position(|t| t == tenant).expect("known tenant");
            while replica_registry.replication_seq(tenant).unwrap_or(0) < learns_per[idx] {
                if Instant::now() >= deadline {
                    return Err(sim_err(format!("replica never caught up on {tenant}")));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }

        // Hand the standby resources to the control plane and kill the
        // shard mid-burst. No migrate/promote calls below this line.
        let mut fleet = StandbyFleet::new(Some(obs.clone()));
        fleet.add_follower(victim, follower);
        fleet.add_store(victim, chaos_store_dir());
        let mut controller = Controller::new(
            router,
            fleet,
            CtrlConfig::default()
                .with_dwell_threshold(Duration::from_millis(50))
                .with_cooldown_ticks(2)
                // Recovery only: rebalancing would make the executed-action
                // trace load-dependent, and this trace must stay exact.
                .with_rebalance_floor(u64::MAX)
                .with_retries(3, Duration::from_millis(5)),
        );
        shards[victim].take().expect("victim still alive").stop();

        let deadline = Instant::now() + Duration::from_secs(60);
        let mut promoted = false;
        loop {
            let report = controller.tick();
            for action in &report.executed {
                match action {
                    ControlAction::PromoteFollower { shard, .. } if *shard == victim => {
                        promoted = true;
                    }
                    other => {
                        return Err(sim_err(format!("unexpected control action {other}")))
                    }
                }
            }
            if !report.failures.is_empty() {
                return Err(sim_err(format!("executor failures: {:?}", report.failures)));
            }
            if promoted && report.quiescent() {
                break;
            }
            if Instant::now() >= deadline {
                return Err(sim_err("cluster never converged back to serving"));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let promotions = controller.driver().recovered() as i64;

        // Second half of the burst: every tenant must serve reads AND
        // writes again, with predictions still correct.
        let mut client = WireClient::connect(router.addr()).ctx("reconnect")?;
        let mut tenants_serving = 0u64;
        for tenant in TENANTS {
            let class = rng.below(3);
            let response = ctx
                .timed(|| {
                    client.call(ServeRequest::Infer {
                        deployment: tenant.into(),
                        image: traffic::class_image(SIDE, class, 0.01),
                    })
                })
                .ctx("post-recovery infer")?;
            infers += 1;
            if predicted(response)? == class {
                correct += 1;
            }
            ctx.timed(|| {
                client.call(ServeRequest::LearnOnline {
                    deployment: tenant.into(),
                    batch: traffic::support_batch(SIDE, &[3], 2),
                })
            })
            .ctx("post-recovery learn")?;
            burst_requests += 2;
            tenants_serving += 1;
        }

        // One routed query reconstructs the whole recovery.
        if !obs.flush(Duration::from_secs(5)) {
            return Err(sim_err("obs collector failed to drain"));
        }
        let timeline = router.obs_query(&ObsQuery::deployment(&format!("shard:{victim}")));
        let open_at = timeline
            .events
            .iter()
            .find(|e| e.kind == EventKind::BreakerOpen)
            .map(|e| e.time_us);
        let promo_at = timeline
            .events
            .iter()
            .find(|e| e.kind == EventKind::Promotion)
            .map(|e| e.time_us);
        let ordered = matches!((open_at, promo_at), (Some(o), Some(p)) if o <= p);
        if !ordered {
            return Err(sim_err(format!(
                "recovery timeline incoherent: breaker-open {open_at:?}, promotion {promo_at:?}"
            )));
        }

        let mut report = ScenarioReport::new("chaos_recovery");
        report.int("tenants", TENANTS.len() as i64, Gate::Exact);
        report.int("burst_requests", burst_requests as i64, Gate::Exact);
        report.int("promotions", promotions, Gate::Exact);
        report.int("manual_recovery_calls", 0, Gate::Exact);
        report.int("breaker_open_seen", i64::from(open_at.is_some()), Gate::Exact);
        report.int("timeline_ordered", i64::from(ordered), Gate::Exact);
        report.int("tenants_serving_after", tenants_serving as i64, Gate::Exact);
        report.float("accuracy", correct as f64 / infers as f64, Gate::AtLeast { slack: 0.05 });
        Ok(report)
    })
    .ctx("router")??;
    for shard in shards.into_iter().flatten() {
        shard.stop();
    }

    // Nothing shed by the bounded sinks across the whole storm + recovery.
    let mut outcome = outcome;
    outcome.int("obs_dropped", obs.counters().dropped as i64, Gate::Exact);
    Ok(outcome)
}

/// A stale-replay attack on the migration/import path: an attacker who
/// captured an old deployment export re-imports it after further learning.
/// The defense under test is sequence monotonicity — the replication
/// sequence must never move backwards, so followers detect the jump and
/// resync instead of silently serving stale deltas — plus typed rejection
/// of corrupted snapshots.
pub fn stale_replay(ctx: &mut ScenarioCtx) -> SimResult<ScenarioReport> {
    let registry = registry_with(&["replay"])?;
    let mut rng = SeedRng::new(ctx.rng_seed());

    let report = ServeRuntime::run(&registry, &serve_config(), |client| -> SimResult<
        ScenarioReport,
    > {
        let learn = |ctx: &mut ScenarioCtx, client: &ServeClient, class: usize| {
            ctx.timed(|| {
                client.call(ServeRequest::LearnOnline {
                    deployment: "replay".into(),
                    batch: traffic::support_batch(SIDE, &[class], 2),
                })
            })
            .ctx("learn")
        };
        for class in 0..3 {
            learn(ctx, client, class)?;
        }
        let export = registry.export_deployment("replay").ctx("export")?;
        let seq_at_export = export.seq;
        for class in 3..6 {
            learn(ctx, client, class)?;
        }
        let seq_before_replay = registry.replication_seq("replay").ctx("seq")?;

        // Attack 1: replay the stale export verbatim. The import itself is a
        // legitimate operation (it is how migration works); the invariant is
        // that the sequence jumps *forward* so subscribers resync.
        let classes_after_replay =
            registry.import_deployment(&export).ctx("stale import")?;
        let seq_after_replay = registry.replication_seq("replay").ctx("seq")?;
        if seq_after_replay <= seq_before_replay {
            return Err(sim_err(format!(
                "replication seq moved backwards: {seq_before_replay} -> {seq_after_replay}"
            )));
        }

        // Attack 2: a corrupted snapshot must be rejected with a typed error
        // and leave the state untouched.
        let mut corrupt = export.clone();
        let victim = rng.below(corrupt.snapshot.len());
        corrupt.snapshot[victim] ^= 0xa5;
        corrupt.seq = seq_after_replay + 100;
        let corrupt_rejected = registry.import_deployment(&corrupt).is_err();
        let seq_after_corrupt = registry.replication_seq("replay").ctx("seq")?;

        // The deployment recovers by re-learning what the replay clobbered.
        for class in 3..6 {
            learn(ctx, client, class)?;
        }
        let response = ctx
            .timed(|| {
                client.call(ServeRequest::Infer {
                    deployment: "replay".into(),
                    image: traffic::class_image(SIDE, 1, 0.01),
                })
            })
            .ctx("post-recovery infer")?;
        let recovered_prediction_ok = predicted(response)? == 1;
        let classes_recovered = registry.stats("replay").ctx("stats")?.classes;

        let mut report = ScenarioReport::new("stale_replay");
        report.int("seq_at_export", seq_at_export as i64, Gate::Exact);
        report.int("seq_before_replay", seq_before_replay as i64, Gate::Exact);
        report.int("seq_after_replay", seq_after_replay as i64, Gate::Exact);
        report.int("seq_monotonic", 1, Gate::Exact);
        report.int("classes_after_replay", classes_after_replay as i64, Gate::Exact);
        report.int("classes_recovered", classes_recovered as i64, Gate::Exact);
        report.int("corrupt_import_rejected", i64::from(corrupt_rejected), Gate::Exact);
        report.int(
            "seq_unchanged_by_corrupt_import",
            i64::from(seq_after_corrupt == seq_after_replay),
            Gate::Exact,
        );
        report.int(
            "recovered_prediction_ok",
            i64::from(recovered_prediction_ok),
            Gate::Exact,
        );
        if !corrupt_rejected {
            return Err(sim_err("corrupted snapshot import was accepted"));
        }
        Ok(report)
    })
    .ctx("serve runtime")??;
    Ok(report)
}

/// Scratch directory for the obs-soak spill log (wiped on entry so reruns in
/// the same process tree start clean).
fn obs_soak_dir() -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ofscil-simbench-obs-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    let _ = std::fs::create_dir_all(&path);
    path
}

/// A durability soak on the observability pipeline itself: a seeded event
/// stream (explicit timestamps — no wall clock anywhere, so every counter
/// in this scenario is `Exact`-gated) is appended through an [`ObsStore`]
/// whose sealed chunks spill into an [`ObsSpill`] log with a budget small
/// enough that the log's own GC must fold old chunks into rollup records
/// mid-soak. The scenario checks the rollup contract on the live store
/// (raw, rollup and auto resolutions must agree exactly), then kills the
/// store mid-chunk, tears garbage onto the spill log's tail, reopens it,
/// and requires the rehydrated store to account for **every sealed event**
/// — through a raw chunk if it survived the spill GC, through a rollup
/// cell if it did not — with aggregates identical to a reference store
/// that never died.
pub fn obs_soak(ctx: &mut ScenarioCtx) -> SimResult<ScenarioReport> {
    use ofscil::obs::ROLLUP_BUCKET_US;
    const CHUNK: usize = 32;
    const TOTAL: usize = 1_500;
    const BUCKETS: usize = 20;
    /// A few KiB: forces the spill log's budget GC to compact during the
    /// soak, so recovery exercises the rollup-record path too.
    const SPILL_BUDGET: u64 = 8 * 1024;

    let dir = obs_soak_dir();
    let spill_path = dir.join("obs.spill");
    let (spill, fresh) = ObsSpill::open_with(&spill_path, SPILL_BUDGET).ctx("open spill")?;
    if !fresh.chunks.is_empty() || !fresh.rollups.is_empty() {
        return Err(sim_err("fresh spill log was not empty"));
    }
    let store = ObsStore::new(ObsConfig::default().with_chunk_events(CHUNK));
    store.set_spill(Arc::new(spill));

    // The reference never dies and sees exactly the events that will have
    // been sealed (and therefore spilled) when the kill lands.
    let sealed_events = TOTAL / CHUNK * CHUNK;
    let reference = ObsStore::new(ObsConfig::default().with_chunk_events(CHUNK));

    let mut rng = SeedRng::new(ctx.rng_seed());
    let bucket = ROLLUP_BUCKET_US as usize;
    for seq in 0..TOTAL {
        let kind = EventKind::ALL[rng.below(EventKind::ALL.len())];
        // Exact binary fractions: sums stay bit-identical no matter how
        // chunks and rollup cells regroup them.
        let accuracy =
            if rng.below(4) == 0 { f32::NAN } else { rng.below(65) as f32 / 64.0 };
        let event = Event::new(kind, &format!("cam-{}", rng.below(3)))
            .with_seq(seq as u64)
            .with_time_us((rng.below(BUCKETS) * bucket + rng.below(bucket)) as u64)
            .with_energy_mj(rng.below(256) as f64 * 0.25)
            .with_latency_us(rng.below(5_000) as u64)
            .with_accuracy(accuracy)
            .with_wal_bytes(rng.below(1 << 20) as u64);
        ctx.timed(|| store.append(&event));
        if seq < sealed_events {
            reference.append(&event);
        }
    }

    // The rollup contract on the live store: every resolution answers the
    // same aggregates, and the cell counts cover every matched row.
    let mut matched_total = 0u64;
    let mut rollup_cells = 0u64;
    for query in [
        ObsQuery::all(),
        ObsQuery::deployment("cam-0"),
        ObsQuery::all().with_kinds(&[EventKind::Learn, EventKind::CtrlPromote]),
    ] {
        let raw = store.query(&query.clone().with_resolution(Resolution::Raw));
        let rolled = store.query(&query.clone().with_resolution(Resolution::Rollup));
        let auto = store.query(&query.clone().with_resolution(Resolution::Auto));
        if rolled.aggregates != raw.aggregates || auto.aggregates != raw.aggregates {
            return Err(sim_err(format!("resolutions disagree for {query:?}")));
        }
        if rolled.rollups.iter().map(|r| r.count).sum::<u64>() != raw.aggregates.matched {
            return Err(sim_err(format!("rollup cells lost rows for {query:?}")));
        }
        matched_total += raw.aggregates.matched;
        rollup_cells += rolled.rollups.len() as u64;
    }
    let pre_kill = store.counters();
    if pre_kill.appended != TOTAL as u64 {
        return Err(sim_err(format!("store appended {} != {TOTAL}", pre_kill.appended)));
    }

    // The kill: the active chunk dies unsealed with the process, and the
    // spill log gets garbage torn onto its tail mid-write.
    drop(store);
    let mut bytes = std::fs::read(&spill_path).ctx("read spill")?;
    bytes.extend_from_slice(&[0x01, 0xff, 0xff, 0x00, 0xde, 0xad]);
    std::fs::write(&spill_path, &bytes).ctx("tear spill tail")?;

    // Recovery: reopen, rehydrate into a brand-new store.
    let (spill, recovery) =
        ObsSpill::open_with(&spill_path, SPILL_BUDGET).ctx("reopen spill")?;
    if recovery.epoch == 0 {
        return Err(sim_err("spill GC never compacted despite the tight budget"));
    }
    let rehydrated = ObsStore::new(ObsConfig::default().with_chunk_events(CHUNK));
    recovery.rehydrate_into(&rehydrated);
    rehydrated.set_spill(Arc::new(spill));

    // Every sealed event is still accounted for, and the downsampled
    // history is identical to the reference that never died.
    let want = reference.query(&ObsQuery::all().with_resolution(Resolution::Rollup));
    let got = rehydrated.query(&ObsQuery::all().with_resolution(Resolution::Rollup));
    if got.aggregates != want.aggregates {
        return Err(sim_err(format!(
            "rehydrated aggregates diverged: {:?} != {:?}",
            got.aggregates, want.aggregates
        )));
    }
    if got.aggregates.matched != sealed_events as u64 {
        return Err(sim_err(format!(
            "rehydrated store accounts for {} of {sealed_events} sealed events",
            got.aggregates.matched
        )));
    }

    let _ = std::fs::remove_dir_all(&dir);
    let mut report = ScenarioReport::new("obs_soak");
    report.int("events", TOTAL as i64, Gate::Exact);
    report.int("sealed_events", sealed_events as i64, Gate::Exact);
    report.int("spilled_chunks", pre_kill.spilled_chunks as i64, Gate::Exact);
    report.int("rollup_rows", pre_kill.rollup_rows as i64, Gate::Exact);
    report.int("matched_total", matched_total as i64, Gate::Exact);
    report.int("rollup_cells", rollup_cells as i64, Gate::Exact);
    report.int("recovered_chunks", recovery.chunks.len() as i64, Gate::Exact);
    report.int("recovered_chunk_events", recovery.events() as i64, Gate::Exact);
    report.int("recovered_rollup_cells", recovery.rollups.len() as i64, Gate::Exact);
    report.int("spill_epoch", recovery.epoch as i64, Gate::Exact);
    report.int("corrupt_records", recovery.corrupt_records as i64, Gate::Exact);
    report.int("rehydrated_matched", got.aggregates.matched as i64, Gate::Exact);
    report.int("sealed_window_identical", 1, Gate::Exact);
    Ok(report)
}

/// A soak on the live-tail streaming path, in three passes, every counter
/// `Exact`-gated because nothing in it touches a wall clock:
///
/// 1. **Shed**: a subscriber that never drains sits on a tiny channel while
///    a seeded event stream floods past it. Delivery is drop-and-count, so
///    the split is exact — `depth` rows delivered, the rest shed — and the
///    clean→overflow transition must stamp exactly one
///    [`SinkOverflow`](EventKind::SinkOverflow) marker, not one per drop.
/// 2. **Resume**: a subscriber drains a prefix live, disconnects, misses a
///    block of appends, then resubscribes from its `(time_us, seq)` cursor.
///    The back-fill must contain exactly the missed rows — strictly after
///    the cursor — and the splice of drained-prefix + back-fill must equal
///    one post-hoc store query bit-for-bit (NaN bits included).
/// 3. **Cluster**: an `ObsSubscribe` frame against a router over two
///    observed shards, opened before any traffic; a deterministic burst is
///    then streamed back through the per-shard legs and the merged stream
///    must converge to the post-hoc routed query as an exact multiset of
///    rows, with zero shard-side sheds.
pub fn stream_soak(ctx: &mut ScenarioCtx) -> SimResult<ScenarioReport> {
    const SHED_EVENTS: usize = 500;
    const SHED_DEPTH: usize = 64;
    const RESUME_PREFIX: usize = 200;
    const RESUME_MISSED: usize = 300;
    const TENANTS: [&str; 4] = ["cam-0", "cam-1", "cam-2", "cam-3"];
    const STEPS: usize = 3;
    const DRAIN_DEADLINE: Duration = Duration::from_secs(30);

    /// Bit-exact row identity (NaN accuracy must equal itself here).
    fn bits(event: &Event) -> (String, u8, u64, u64, u64, u64, u32, u64) {
        (
            event.deployment.clone(),
            event.kind.code(),
            event.seq,
            event.time_us,
            event.energy_mj.to_bits(),
            event.latency_us,
            event.accuracy.to_bits(),
            event.wal_bytes,
        )
    }

    let mut rng = SeedRng::new(ctx.rng_seed());
    let mut synth = |seq: usize| -> Event {
        let kind = if rng.below(4) == 0 { EventKind::Learn } else { EventKind::Infer };
        let accuracy =
            if rng.below(4) == 0 { f32::NAN } else { rng.below(65) as f32 / 64.0 };
        Event::new(kind, &format!("cam-{}", rng.below(3)))
            .with_seq(seq as u64)
            .with_time_us(1_000 * seq as u64)
            .with_energy_mj(rng.below(256) as f64 * 0.25)
            .with_latency_us(rng.below(5_000) as u64)
            .with_accuracy(accuracy)
            .with_wal_bytes(rng.below(1 << 20) as u64)
    };

    // Pass 1 — shed: the hot path never waits on the full channel, it
    // drops-and-counts, and the overflow marker is transition-only.
    let store = ObsStore::new(ObsConfig::default());
    let tail = store.subscribe(ObsQuery::all(), None, SHED_DEPTH);
    if !tail.backfill.events.is_empty() {
        return Err(sim_err("fresh store back-fill was not empty"));
    }
    for seq in 0..SHED_EVENTS {
        let event = synth(seq);
        ctx.timed(|| store.append(&event));
    }
    let (shed_delivered, shed_dropped) = (tail.delivered(), tail.dropped());
    if shed_delivered != SHED_DEPTH as u64 {
        return Err(sim_err(format!(
            "shed pass delivered {shed_delivered}, expected the channel depth {SHED_DEPTH}"
        )));
    }
    let overflow_markers = store
        .query(&ObsQuery::all().with_kinds(&[EventKind::SinkOverflow]))
        .aggregates
        .matched;
    if overflow_markers != 1 {
        return Err(sim_err(format!(
            "overflow must mark the clean->overflow transition once, got {overflow_markers}"
        )));
    }
    // Every shed row is accounted: the synthetic rows plus the marker's own
    // fan-out attempt against the still-full channel.
    if shed_delivered + shed_dropped != SHED_EVENTS as u64 + overflow_markers {
        return Err(sim_err(format!(
            "shed conservation broke: {shed_delivered} + {shed_dropped} != \
             {SHED_EVENTS} + {overflow_markers}"
        )));
    }
    drop(tail);

    // Pass 2 — resume: drain a prefix, disconnect, miss a block, then
    // splice the cursor back-fill onto the prefix gap-free.
    let store = ObsStore::new(ObsConfig::default().with_chunk_events(32));
    let raw = ObsQuery::all().with_resolution(Resolution::Raw);
    let tail = store.subscribe(raw.clone(), None, RESUME_PREFIX + RESUME_MISSED);
    for seq in 0..RESUME_PREFIX {
        let event = synth(seq);
        ctx.timed(|| store.append(&event));
    }
    let mut cursor = ObsCursor::start();
    let mut spliced: Vec<Event> = Vec::new();
    while let Some(event) = tail.try_next() {
        cursor.advance(event.order_key());
        spliced.push(event);
    }
    if spliced.len() != RESUME_PREFIX {
        return Err(sim_err(format!(
            "drained {} of {RESUME_PREFIX} live rows before the disconnect",
            spliced.len()
        )));
    }
    let resume_dropped = tail.dropped();
    drop(tail);
    for seq in RESUME_PREFIX..RESUME_PREFIX + RESUME_MISSED {
        let event = synth(seq);
        ctx.timed(|| store.append(&event));
    }
    let resumed_tail = store.subscribe(raw.clone(), Some(cursor), RESUME_PREFIX);
    let backfill_rows = resumed_tail.backfill.events.len();
    if backfill_rows != RESUME_MISSED || resumed_tail.backfill.truncated {
        return Err(sim_err(format!(
            "resume back-fill returned {backfill_rows} rows (truncated: {}), expected \
             exactly the {RESUME_MISSED} missed rows",
            resumed_tail.backfill.truncated
        )));
    }
    if resumed_tail.backfill.events.iter().any(|e| e.order_key() <= cursor.key()) {
        return Err(sim_err("back-fill leaked a row at or before the resume cursor"));
    }
    spliced.extend(resumed_tail.backfill.events.iter().cloned());
    let reference = store.query(&raw);
    if reference.truncated || reference.events.len() != RESUME_PREFIX + RESUME_MISSED {
        return Err(sim_err("post-hoc reference query did not cover the full range"));
    }
    let splice_bitexact = spliced.iter().map(bits).collect::<Vec<_>>()
        == reference.events.iter().map(bits).collect::<Vec<_>>();
    if !splice_bitexact {
        return Err(sim_err("splice diverged from the post-hoc query"));
    }
    drop(resumed_tail);

    // Pass 3 — cluster: subscribe through the router before any traffic,
    // then require the merged per-shard stream to converge to the post-hoc
    // routed query as an exact multiset.
    let shards: Vec<ShardProcess> = (0..2)
        .map(|_| {
            ShardProcess::spawn_observed(
                registry_with(&TENANTS)?,
                WireConfig::tcp_loopback(),
                Some(Obs::new(ObsConfig::default())),
            )
            .ctx("spawn observed shard")
        })
        .collect::<SimResult<_>>()?;
    let config =
        RouterConfig::tcp_loopback(shards.iter().map(|s| s.addr().clone()).collect())
            .with_deployments(&TENANTS)
            .with_obs(Obs::new(ObsConfig::default()));
    let (cluster_requests, cluster_events, cluster_dropped) =
        RouterServer::run(&config, |router| -> SimResult<(u64, u64, u64)> {
            let sub = WireClient::connect(router.addr()).ctx("subscriber connect")?;
            sub.set_read_timeout(Some(Duration::from_millis(20))).ctx("read timeout")?;
            let mut stream =
                sub.obs_subscribe(&ObsQuery::all(), None).ctx("obs subscribe")?;

            let mut client = WireClient::connect(router.addr()).ctx("connect")?;
            let mut requests = 0u64;
            for step in 0..STEPS {
                for tenant in TENANTS {
                    ctx.timed(|| {
                        client.call(ServeRequest::LearnOnline {
                            deployment: tenant.into(),
                            batch: traffic::support_batch(
                                SIDE,
                                &[2 * step, 2 * step + 1],
                                3,
                            ),
                        })
                    })
                    .ctx("burst learn")?;
                    requests += 1;
                    for _ in 0..2 {
                        let response = ctx
                            .timed(|| {
                                client.call(ServeRequest::Infer {
                                    deployment: tenant.into(),
                                    image: traffic::class_image(SIDE, 2 * step, 0.01),
                                })
                            })
                            .ctx("burst infer")?;
                        requests += 1;
                        // Any prediction will do — accuracy is other
                        // scenarios' business; this one gates the stream.
                        predicted(response)?;
                    }
                }
            }

            // Traffic has quiesced; one routed query is the ground truth.
            let reference = router.obs_query(&ObsQuery::all());
            if reference.shards_err != 0 || reference.truncated {
                return Err(sim_err("reference query did not cover every shard"));
            }
            let mut expected: Vec<_> = reference.events.iter().map(bits).collect();
            expected.sort_unstable();

            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    std::thread::sleep(DRAIN_DEADLINE);
                    stop.store(true, std::sync::atomic::Ordering::Release);
                });
            }
            let mut streamed: Vec<_> = Vec::new();
            let mut dropped = 0u64;
            loop {
                let mut sorted = streamed.clone();
                sorted.sort_unstable();
                if sorted == expected {
                    break;
                }
                match stream.next_batch(Some(&stop)).ctx("next batch")? {
                    Some(batch) => {
                        dropped = batch.dropped;
                        streamed.extend(batch.events.iter().map(bits));
                    }
                    None => {
                        return Err(sim_err(format!(
                            "stream went silent at {} of {} rows",
                            sorted.len(),
                            expected.len()
                        )))
                    }
                }
            }
            Ok((requests, reference.events.len() as u64, dropped))
        })
        .ctx("router")??;
    for shard in shards {
        shard.stop();
    }

    let mut report = ScenarioReport::new("stream_soak");
    report.int("shed_events", SHED_EVENTS as i64, Gate::Exact);
    report.int("shed_delivered", shed_delivered as i64, Gate::Exact);
    report.int("shed_dropped", shed_dropped as i64, Gate::Exact);
    report.int("overflow_markers", overflow_markers as i64, Gate::Exact);
    report.int("resume_prefix", RESUME_PREFIX as i64, Gate::Exact);
    report.int("resume_backfill", backfill_rows as i64, Gate::Exact);
    report.int("resume_dropped", resume_dropped as i64, Gate::Exact);
    report.int("resumed", 1, Gate::Exact);
    report.int("splice_bitexact", i64::from(splice_bitexact), Gate::Exact);
    report.int("cluster_requests", cluster_requests as i64, Gate::Exact);
    report.int("cluster_events", cluster_events as i64, Gate::Exact);
    report.int("cluster_dropped", cluster_dropped as i64, Gate::Exact);
    report.int("cluster_matched", 1, Gate::Exact);
    Ok(report)
}
