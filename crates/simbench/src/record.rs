//! Trajectory recording: one JSON line per simbench run, appended to
//! `BENCH_simbench.json`, plus the parser and comparator the regression gate
//! (`--check`) uses against the last committed line.
//!
//! The serializer keeps object keys in insertion order and renders floats
//! with Rust's shortest round-trip formatting, so a deterministic run
//! produces a byte-identical line every time — the acceptance property the
//! CLI's `--scenario all --seed N` contract is built on. (The vendored
//! `serde` stand-in is a marker-only stub, hence the hand-rolled codec; the
//! same pattern as `ofscil_wire`'s binary codec.)

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::Path;

/// A JSON value with ordered object keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` — used for metrics that were not measured this run (timing
    /// fields in deterministic mode).
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (counts, sequence numbers).
    Int(i64),
    /// A float (accuracies, shares). Non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved, which makes rendering
    /// deterministic without sorting.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an f64 when it is numeric (`Int` or `Float`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) if !v.is_finite() => out.push_str("null"),
            Json::Float(v) => {
                // `{:?}` is the shortest representation that round-trips the
                // exact bits — deterministic for a deterministic computation.
                let _ = write!(out, "{v:?}");
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document. Supports exactly the subset [`Json::render`]
/// emits (plus insignificant whitespace) — enough to read back a committed
/// trajectory line.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| "non-ASCII \\u escape")?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "bad \\u escape")?;
                                s.push(
                                    char::from_u32(code)
                                        .ok_or("surrogate \\u escape unsupported")?,
                                );
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar, not one byte.
                        let rest = std::str::from_utf8(&bytes[*pos..])
                            .map_err(|_| "invalid UTF-8 in string")?;
                        let c = rest.chars().next().expect("non-empty by construction");
                        s.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos])
                .expect("ASCII by construction");
            if text.bytes().all(|b| b.is_ascii_digit() || b == b'-') {
                text.parse::<i64>().map(Json::Int).map_err(|e| format!("bad int {text:?}: {e}"))
            } else {
                text.parse::<f64>()
                    .map(Json::Float)
                    .map_err(|e| format!("bad number {text:?}: {e}"))
            }
        }
    }
}

/// Appends one rendered JSON line to the trajectory file.
///
/// # Errors
///
/// Returns the I/O error message on failure.
pub fn append_line(path: &Path, line: &Json) -> Result<(), String> {
    let mut file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    writeln!(file, "{}", line.render()).map_err(|e| format!("write {}: {e}", path.display()))
}

/// Reads the last non-empty line of the trajectory file; `Ok(None)` when the
/// file does not exist or holds no lines yet.
///
/// # Errors
///
/// Returns the I/O or parse error message on failure.
pub fn read_last_line(path: &Path) -> Result<Option<Json>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    match text.lines().rev().find(|line| !line.trim().is_empty()) {
        Some(line) => parse(line).map(Some).map_err(|e| format!("{}: {e}", path.display())),
        None => Ok(None),
    }
}

/// How the regression gate treats one recorded metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Not gated — informational only (timing fields in deterministic mode,
    /// raw counts whose value legitimately changes when scenarios are
    /// retuned).
    None,
    /// Must match the committed value exactly (invariant counts: e.g. every
    /// hostile frame rejected).
    Exact,
    /// Must not drop more than `slack` below the committed value (quality
    /// metrics: accuracies, margins).
    AtLeast {
        /// Permitted drop before the gate fails.
        slack: f64,
    },
    /// Must not rise more than `slack` above the committed value
    /// (lower-is-better metrics: forgetting).
    AtMost {
        /// Permitted rise before the gate fails.
        slack: f64,
    },
}

/// One regression found by [`compare_runs`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// `scenario.metric` path of the offending value.
    pub path: String,
    /// Human-readable description of the drop.
    pub detail: String,
}

/// Compares a fresh run against the committed baseline line. `gates` maps
/// `(scenario, metric)` to the gate policy; ungated metrics and scenarios
/// absent from either side are skipped (the gate must not block adding or
/// retiring scenarios). A baseline recorded at a different seed is skipped
/// entirely — it pins a different trace.
pub fn compare_runs(
    baseline: &Json,
    fresh: &Json,
    gates: &[(String, String, Gate)],
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    let same_seed = matches!(
        (baseline.get("seed"), fresh.get("seed")),
        (Some(a), Some(b)) if a == b
    );
    if !same_seed {
        return regressions;
    }
    let (Some(base_scenarios), Some(fresh_scenarios)) =
        (baseline.get("scenarios"), fresh.get("scenarios"))
    else {
        return regressions;
    };
    for (scenario, metric, gate) in gates {
        let path = format!("{scenario}.{metric}");
        let base = base_scenarios.get(scenario).and_then(|s| s.get(metric));
        let new = fresh_scenarios.get(scenario).and_then(|s| s.get(metric));
        let (Some(base), Some(new)) = (base, new) else {
            continue;
        };
        match gate {
            Gate::None => {}
            Gate::Exact => {
                if base != new {
                    regressions.push(Regression {
                        path,
                        detail: format!(
                            "expected {} exactly, got {}",
                            base.render(),
                            new.render()
                        ),
                    });
                }
            }
            Gate::AtLeast { slack } => {
                if let (Some(base), Some(new)) = (base.as_f64(), new.as_f64()) {
                    if new < base - slack {
                        regressions.push(Regression {
                            path,
                            detail: format!(
                                "dropped to {new:.4} from committed {base:.4} \
                                 (slack {slack})"
                            ),
                        });
                    }
                }
            }
            Gate::AtMost { slack } => {
                if let (Some(base), Some(new)) = (base.as_f64(), new.as_f64()) {
                    if new > base + slack {
                        regressions.push(Regression {
                            path,
                            detail: format!(
                                "rose to {new:.4} from committed {base:.4} \
                                 (slack {slack})"
                            ),
                        });
                    }
                }
            }
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip_preserves_structure_and_order() {
        let doc = Json::Obj(vec![
            ("bench".into(), Json::Str("simbench".into())),
            ("seed".into(), Json::Int(7)),
            ("zeta".into(), Json::Float(0.8125)),
            ("rps".into(), Json::Null),
            ("ok".into(), Json::Bool(true)),
            (
                "arr".into(),
                Json::Arr(vec![Json::Int(-3), Json::Float(0.5), Json::Str("a\"b\\c".into())]),
            ),
        ]);
        let rendered = doc.render();
        let parsed = parse(&rendered).unwrap();
        assert_eq!(parsed, doc);
        // Byte-stability: rendering the parse reproduces the exact text.
        assert_eq!(parsed.render(), rendered);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "\"unterminated", "{\"a\" 1}", "12 34"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for v in [0.1, 1.0 / 3.0, 123_456.789, 1e-12, -0.0625] {
            let rendered = Json::Float(v).render();
            match parse(&rendered).unwrap() {
                Json::Float(back) => assert_eq!(back.to_bits(), v.to_bits(), "{rendered}"),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    fn line(seed: i64, acc: f64, rejected: i64) -> Json {
        Json::Obj(vec![
            ("seed".into(), Json::Int(seed)),
            (
                "scenarios".into(),
                Json::Obj(vec![(
                    "audit".into(),
                    Json::Obj(vec![
                        ("serve_avg".into(), Json::Float(acc)),
                        ("hostile_rejected".into(), Json::Int(rejected)),
                    ]),
                )]),
            ),
        ])
    }

    #[test]
    fn gate_flags_quality_drops_and_exact_mismatches() {
        let gates = vec![
            ("audit".to_string(), "serve_avg".to_string(), Gate::AtLeast { slack: 0.02 }),
            ("audit".to_string(), "hostile_rejected".to_string(), Gate::Exact),
        ];
        // Within slack: clean.
        assert!(compare_runs(&line(7, 0.80, 5), &line(7, 0.79, 5), &gates).is_empty());
        // Quality drop beyond slack: flagged.
        let drops = compare_runs(&line(7, 0.80, 5), &line(7, 0.70, 5), &gates);
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].path, "audit.serve_avg");
        // Exact mismatch: flagged.
        let exact = compare_runs(&line(7, 0.80, 5), &line(7, 0.80, 4), &gates);
        assert_eq!(exact.len(), 1);
        assert_eq!(exact[0].path, "audit.hostile_rejected");
        // Different seed pins a different trace: skipped wholesale.
        assert!(compare_runs(&line(8, 0.80, 5), &line(7, 0.10, 0), &gates).is_empty());
    }

    #[test]
    fn append_and_read_back_last_line() {
        let dir = std::env::temp_dir().join("ofscil_simbench_record_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trajectory.json");
        let _ = std::fs::remove_file(&path);
        assert_eq!(read_last_line(&path).unwrap(), None);
        append_line(&path, &line(7, 0.8, 5)).unwrap();
        append_line(&path, &line(7, 0.9, 6)).unwrap();
        let last = read_last_line(&path).unwrap().unwrap();
        assert_eq!(last, line(7, 0.9, 6));
        std::fs::remove_file(&path).unwrap();
    }
}
