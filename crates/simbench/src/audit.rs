//! The per-tenant learning-quality audit: the full FSCIL protocol driven
//! **through the serving API** (register → `LearnOnline` per session →
//! `Infer` per test sample), with session-accuracy and forgetting curves
//! compared against the classical baseline heads from `crates/baselines`
//! (nearest-class-mean in backbone space — the iCaRL-style exemplar-mean
//! classifier — and the fixed ETF head).
//!
//! This is the scenario that keeps scale work honest: a serving-stack
//! change that silently degrades the *learning* shows up here as a dropped
//! `serve_avg` or a grown `forgetting`, and the trajectory gate refuses it.

use ofscil::prelude::*;
use ofscil::data::Dataset;

use crate::record::{Gate, Json};
use crate::scenario::{sim_err, Ctx, ScenarioCtx, ScenarioReport, SimResult};

/// The audit's experiment profile: a scaled-down FSCIL benchmark (like the
/// tier-1 baseline-comparison test uses) that pretrains + metalearns a real
/// backbone in seconds while keeping the session structure of the paper.
fn audit_config(seed: u64) -> ExperimentConfig {
    let mut config = ExperimentConfig::micro(seed);
    config.fscil.synthetic.num_classes = 15;
    config.fscil.synthetic.image_size = 12;
    config.fscil.num_base_classes = 9;
    config.fscil.num_sessions = 3;
    config.fscil.ways = 2;
    config.fscil.base_train_per_class = 10;
    config.fscil.test_per_class = 5;
    config.pretrain.epochs = 2;
    config.pretrain.batch_size = 20;
    if let Some(meta) = &mut config.metalearn {
        meta.iterations = 8;
    }
    config
}

/// Accuracy of the serve path on a dataset: one `Infer` per test sample.
fn serve_accuracy(
    ctx: &mut ScenarioCtx,
    client: &ServeClient,
    dataset: &Dataset,
) -> SimResult<f64> {
    let mut correct = 0u64;
    for sample in dataset.iter() {
        let response = ctx
            .timed(|| {
                client.call(ServeRequest::Infer {
                    deployment: "audit".into(),
                    image: sample.image.clone(),
                })
            })
            .ctx("audit infer")?;
        match response {
            ServeResponse::Prediction { class, .. } => {
                if class == sample.label {
                    correct += 1;
                }
            }
            other => return Err(sim_err(format!("expected a prediction, got {other:?}"))),
        }
    }
    Ok(correct as f64 / dataset.len() as f64)
}

/// Runs the learning-quality audit. Fails (rather than records) when the
/// serve path stops beating the NCM baseline — a bench line claiming
/// quality must demonstrate it.
pub fn audit(ctx: &mut ScenarioCtx) -> SimResult<ScenarioReport> {
    let outcome = run_experiment(&audit_config(ctx.seed)).ctx("audit experiment")?;
    let benchmark = outcome.benchmark;
    let mut model = outcome.model;
    let reference_avg = outcome.sessions.average();

    // Baseline heads on the *same* trained backbone and data — the only
    // honest comparison. NCM over backbone features is the iCaRL-style
    // exemplar-mean classifier; the ETF head is the fixed-simplex variant.
    let mut ncm = NearestClassMean::new(SimilarityMetric::Cosine);
    let ncm_results =
        run_baseline_protocol(&mut model, &benchmark, &mut ncm, FeatureSpace::Backbone, 32)
            .ctx("ncm baseline")?;
    let mut etf = EtfHead::new(
        model.projection_dim(),
        benchmark.config().total_classes(),
        ctx.seed,
    );
    let etf_results =
        run_baseline_protocol(&mut model, &benchmark, &mut etf, FeatureSpace::Projected, 32)
            .ctx("etf baseline")?;

    // Now the same protocol through the serving stack: clear the explicit
    // memory and deploy the trained model behind the serve API.
    model.em_mut().clear();
    let side = benchmark.config().synthetic.image_size;
    let registry = LearnerRegistry::new();
    registry
        .register(DeploymentSpec::new("audit", (side, side)), model)
        .ctx("register audit deployment")?;
    let config = ServeConfig { workers: 2, ..ServeConfig::default() };

    let (serve_sessions, base_track) =
        ServeRuntime::run(&registry, &config, |client| -> SimResult<(Vec<f64>, Vec<f64>)> {
            let mut sessions = Vec::new();
            let mut base_track = Vec::new();
            let test0 = benchmark.test_after_session(0).ctx("base test split")?;

            // Session 0: base classes, learned per class exactly like
            // `run_fscil_protocol` does.
            let base = benchmark.base_train();
            for class in base.classes() {
                let batch = base.batch(&base.indices_of_class(class)).ctx("base batch")?;
                ctx.timed(|| {
                    client.call(ServeRequest::LearnOnline { deployment: "audit".into(), batch })
                })
                .ctx("base learn")?;
            }
            sessions.push(serve_accuracy(ctx, client, &test0)?);
            base_track.push(sessions[0]);

            // Incremental sessions: one online support-batch learn each,
            // then evaluation over every class seen so far — plus the
            // base-classes-only evaluation that feeds the forgetting curve.
            for session in benchmark.sessions() {
                let support = session.support.full_batch().ctx("support batch")?;
                ctx.timed(|| {
                    client.call(ServeRequest::LearnOnline {
                        deployment: "audit".into(),
                        batch: support,
                    })
                })
                .ctx("session learn")?;
                let test = benchmark.test_after_session(session.index).ctx("test split")?;
                sessions.push(serve_accuracy(ctx, client, &test)?);
                base_track.push(serve_accuracy(ctx, client, &test0)?);
            }
            Ok((sessions, base_track))
        })
        .ctx("serve runtime")??;

    let serve_avg = serve_sessions.iter().sum::<f64>() / serve_sessions.len() as f64;
    let forgetting = base_track[0] - base_track[base_track.len() - 1];
    let ncm_avg = f64::from(ncm_results.average());
    let etf_avg = f64::from(etf_results.average());

    // The acceptance bar: scale plumbing must not cost learning quality.
    // The serve path *is* the O-FSCIL method, so it must beat the classical
    // exemplar-mean baseline on the same backbone.
    if serve_avg <= ncm_avg {
        return Err(sim_err(format!(
            "serve-path FSCIL average {serve_avg:.4} does not beat the NCM baseline \
             {ncm_avg:.4}"
        )));
    }

    let mut report = ScenarioReport::new("audit");
    report.int("sessions", serve_sessions.len() as i64, Gate::Exact);
    report.value(
        "serve_sessions",
        Json::Arr(serve_sessions.iter().map(|&a| Json::Float(a)).collect()),
        Gate::None,
    );
    report.float("serve_avg", serve_avg, Gate::AtLeast { slack: 0.02 });
    report.float("serve_session0", serve_sessions[0], Gate::None);
    report.float(
        "serve_last_session",
        serve_sessions[serve_sessions.len() - 1],
        Gate::AtLeast { slack: 0.03 },
    );
    report.value(
        "base_class_track",
        Json::Arr(base_track.iter().map(|&a| Json::Float(a)).collect()),
        Gate::None,
    );
    report.float("forgetting", forgetting, Gate::AtMost { slack: 0.03 });
    report.float("ncm_avg", ncm_avg, Gate::None);
    report.float("etf_avg", etf_avg, Gate::None);
    report.float("margin_vs_ncm", serve_avg - ncm_avg, Gate::None);
    report.int("beats_ncm", 1, Gate::Exact);
    report.float("reference_avg", f64::from(reference_avg), Gate::None);
    Ok(report)
}
