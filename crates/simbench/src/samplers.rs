//! Deterministic workload-shape samplers: Zipfian popularity, diurnal load
//! curves, and class-distribution drift schedules.
//!
//! Everything here is pure arithmetic over a [`SeedRng`] stream, so two runs
//! with the same seed replay the exact same request trace — the property the
//! trajectory recorder's byte-identical-output guarantee rests on.

use ofscil::prelude::SeedRng;

/// A Zipfian (power-law) categorical distribution over `n` ranks: rank `r`
/// (0-based) carries weight `1 / (r + 1)^exponent`. Rank 0 is the most
/// popular — the "hot tenant" in a multi-tenant workload.
#[derive(Debug, Clone)]
pub struct Zipfian {
    /// Cumulative distribution over ranks; last entry is exactly `1.0`.
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipfian {
    /// Builds the distribution over `n >= 1` ranks with the given exponent
    /// (`1.0` is the classic Zipf law; larger values concentrate more mass
    /// on the head).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` — an empty popularity distribution is a
    /// programming error, not a workload.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n >= 1, "a Zipfian needs at least one rank");
        let weights: Vec<f64> =
            (0..n).map(|rank| 1.0 / ((rank + 1) as f64).powf(exponent)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let mut cdf: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        // Guard the tail against float round-off so `sample` can never fall
        // off the end of the table.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Zipfian { cdf, exponent }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when the distribution has exactly one rank (it never has zero).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The exponent the distribution was built with.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The probability mass of rank `rank` — the analytic share an infinite
    /// sample converges to.
    pub fn expected_share(&self, rank: usize) -> f64 {
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lo
    }

    /// Draws one rank by inverse-CDF lookup.
    pub fn sample(&self, rng: &mut SeedRng) -> usize {
        let u = rng.uniform() as f64;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A diurnal (daily) load curve: a raised cosine oscillating between `floor`
/// requests per tick at the trough and `peak` at the crest, with the given
/// period in ticks.
///
/// `level(t) = floor + (peak - floor) * (1 - cos(2πt / period)) / 2`
///
/// The curve starts at the trough (`level(0) == floor`), crests at
/// `t = period / 2`, and its mean over one full period is exactly
/// `(floor + peak) / 2` — the closed form [`Diurnal::mean_level`] returns
/// and the property tests pin against a numeric integral.
#[derive(Debug, Clone, Copy)]
pub struct Diurnal {
    /// Trough load in requests per tick.
    pub floor: f64,
    /// Crest load in requests per tick.
    pub peak: f64,
    /// Period of one simulated "day", in ticks.
    pub period: f64,
}

impl Diurnal {
    /// Instantaneous load at tick `t` (continuous; callers round).
    pub fn level(&self, t: f64) -> f64 {
        let phase = std::f64::consts::TAU * t / self.period;
        self.floor + (self.peak - self.floor) * (1.0 - phase.cos()) / 2.0
    }

    /// Requests to issue on integer tick `t`: the level rounded to nearest.
    pub fn requests_at(&self, t: u64) -> u64 {
        self.level(t as f64).round() as u64
    }

    /// The exact mean of `level` over one period: `(floor + peak) / 2`.
    pub fn mean_level(&self) -> f64 {
        (self.floor + self.peak) / 2.0
    }
}

/// A class-distribution drift schedule: the class population is revealed in
/// phases, and within a phase the *newest* classes receive the bulk of the
/// traffic (freshly onboarded classes are the ones users actually query).
#[derive(Debug, Clone)]
pub struct DriftSchedule {
    phases: Vec<Vec<usize>>,
    /// Probability that a draw lands in the newest phase's classes instead
    /// of the uniform backlog.
    hot_share: f64,
}

impl DriftSchedule {
    /// Builds a schedule from explicit per-phase class groups.
    ///
    /// # Panics
    ///
    /// Panics when `phases` is empty or any phase introduces no classes.
    pub fn new(phases: Vec<Vec<usize>>, hot_share: f64) -> Self {
        assert!(!phases.is_empty(), "a drift schedule needs at least one phase");
        assert!(
            phases.iter().all(|p| !p.is_empty()),
            "every drift phase must introduce at least one class"
        );
        DriftSchedule { phases, hot_share }
    }

    /// Number of phases.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// Classes introduced by phase `phase`.
    pub fn introduced(&self, phase: usize) -> &[usize] {
        &self.phases[phase]
    }

    /// All classes visible at the end of phase `phase` (inclusive).
    pub fn seen(&self, phase: usize) -> Vec<usize> {
        self.phases[..=phase].iter().flatten().copied().collect()
    }

    /// Draws a class to query during `phase`: with probability `hot_share`
    /// from the newest classes, otherwise uniformly from everything seen.
    pub fn sample_class(&self, phase: usize, rng: &mut SeedRng) -> usize {
        if rng.chance(self.hot_share as f32) {
            let hot = &self.phases[phase];
            hot[rng.below(hot.len())]
        } else {
            let seen = self.seen(phase);
            seen[rng.below(seen.len())]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite property test: the empirical rank-frequency curve of a
    /// seeded Zipfian sample follows the configured power law — the log-log
    /// regression slope over the ranks recovers `-exponent`.
    #[test]
    fn zipf_rank_frequency_slope_matches_exponent() {
        for &exponent in &[0.8, 1.0, 1.3] {
            let zipf = Zipfian::new(8, exponent);
            let mut rng = SeedRng::new(20_240_807);
            let draws = 60_000;
            let mut counts = vec![0u64; zipf.len()];
            for _ in 0..draws {
                counts[zipf.sample(&mut rng)] += 1;
            }
            // Every rank must be hit, in strictly head-heavy order overall.
            assert!(counts.iter().all(|&c| c > 0), "rank starved: {counts:?}");
            assert!(counts[0] > counts[zipf.len() - 1]);

            // Least-squares slope of ln(freq) against ln(rank+1).
            let points: Vec<(f64, f64)> = counts
                .iter()
                .enumerate()
                .map(|(rank, &c)| (((rank + 1) as f64).ln(), (c as f64 / draws as f64).ln()))
                .collect();
            let n = points.len() as f64;
            let sx: f64 = points.iter().map(|p| p.0).sum();
            let sy: f64 = points.iter().map(|p| p.1).sum();
            let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
            let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
            let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
            assert!(
                (slope + exponent).abs() < 0.12,
                "slope {slope:.3} should approximate -{exponent}"
            );
        }
    }

    /// Satellite property test: empirical per-rank shares converge on the
    /// analytic `expected_share`.
    #[test]
    fn zipf_empirical_shares_match_expected_share() {
        let zipf = Zipfian::new(6, 1.1);
        let total: f64 = (0..6).map(|r| zipf.expected_share(r)).sum();
        assert!((total - 1.0).abs() < 1e-12, "shares must sum to 1, got {total}");
        let mut rng = SeedRng::new(99);
        let draws = 40_000;
        let mut counts = vec![0u64; zipf.len()];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for (rank, &c) in counts.iter().enumerate() {
            let empirical = c as f64 / draws as f64;
            let expected = zipf.expected_share(rank);
            assert!(
                (empirical - expected).abs() < 0.01,
                "rank {rank}: empirical {empirical:.4} vs expected {expected:.4}"
            );
        }
    }

    /// Satellite property test: the numeric integral of the diurnal curve
    /// over one period equals `mean_level() * period`, and the curve is
    /// exactly periodic.
    #[test]
    fn diurnal_period_integral_matches_closed_form_mean() {
        let curve = Diurnal { floor: 2.0, peak: 14.0, period: 24.0 };
        let steps = 200_000;
        let dt = curve.period / steps as f64;
        // Midpoint rule — O(dt²) error, far below the assertion tolerance.
        let integral: f64 =
            (0..steps).map(|i| curve.level((i as f64 + 0.5) * dt) * dt).sum();
        let expected = curve.mean_level() * curve.period;
        assert!(
            (integral - expected).abs() < 1e-6,
            "integral {integral} vs closed form {expected}"
        );
        for t in [0.0, 3.7, 11.2, 23.9] {
            assert!((curve.level(t) - curve.level(t + curve.period)).abs() < 1e-9);
        }
        assert!((curve.level(0.0) - curve.floor).abs() < 1e-12);
        assert!((curve.level(curve.period / 2.0) - curve.peak).abs() < 1e-12);
    }

    #[test]
    fn drift_schedule_reveals_classes_in_phases() {
        let drift =
            DriftSchedule::new(vec![vec![0, 1, 2], vec![3, 4], vec![5, 6]], 0.7);
        assert_eq!(drift.num_phases(), 3);
        assert_eq!(drift.seen(0), vec![0, 1, 2]);
        assert_eq!(drift.seen(2), vec![0, 1, 2, 3, 4, 5, 6]);
        let mut rng = SeedRng::new(5);
        let mut hot_hits = 0;
        let draws = 5_000;
        for _ in 0..draws {
            let class = drift.sample_class(1, &mut rng);
            assert!(class <= 4, "phase 1 must never surface phase-2 classes");
            if drift.introduced(1).contains(&class) {
                hot_hits += 1;
            }
        }
        // hot_share 0.7 plus the backlog draws that also land on phase-1
        // classes: the newest classes must clearly dominate.
        assert!(hot_hits as f64 / draws as f64 > 0.6);
    }
}
