//! The `simbench` CLI: runs adversarial workload scenarios and the
//! learning-quality audit, appends one trajectory line to
//! `BENCH_simbench.json`, and (with `--check`) gates the fresh run against
//! the last committed line.
//!
//! ```text
//! simbench [--scenario all|smoke|<name>] [--seed N] [--out PATH]
//!          [--timing] [--check] [--list]
//! ```
//!
//! Without `--timing` the appended line is byte-identical across runs at
//! the same seed — `rps`/`p99_us` are recorded as `null` instead of
//! measured, so the trajectory file stays diffable and the determinism
//! contract (`--scenario all --seed 7` twice → identical lines) holds.

use std::path::PathBuf;
use std::process::ExitCode;

use ofscil_simbench::record::{append_line, compare_runs, read_last_line};
use ofscil_simbench::scenario::{run, scenarios, select};

struct Args {
    selector: String,
    seed: u64,
    out: PathBuf,
    timing: bool,
    check: bool,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        selector: "all".to_string(),
        seed: ofscil_bench::seed_from_env(),
        out: PathBuf::from("BENCH_simbench.json"),
        timing: false,
        check: false,
        list: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--scenario" => args.selector = value_of("--scenario")?,
            "--seed" => {
                args.seed = value_of("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value_of("--out")?),
            "--timing" => args.timing = true,
            "--check" => args.check = true,
            "--list" => args.list = true,
            "--help" | "-h" => {
                println!(
                    "simbench [--scenario all|smoke|<name>] [--seed N] [--out PATH] \
                     [--timing] [--check] [--list]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("simbench: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        for scenario in scenarios() {
            let tag = if scenario.smoke { " [smoke]" } else { "" };
            println!("{:18} {}{tag}", scenario.name, scenario.summary);
        }
        return ExitCode::SUCCESS;
    }

    let selected = match select(&args.selector) {
        Ok(selected) => selected,
        Err(e) => {
            eprintln!("simbench: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "simbench: {} scenario(s), seed {}{}",
        selected.len(),
        args.seed,
        if args.timing { ", timing on" } else { "" }
    );

    // The committed baseline must be read *before* appending the fresh line.
    let baseline = match read_last_line(&args.out) {
        Ok(baseline) => baseline,
        Err(e) => {
            eprintln!("simbench: {e}");
            return ExitCode::FAILURE;
        }
    };

    let outcome = match run(&selected, args.seed, args.timing, |name| {
        eprintln!("simbench: running {name}");
    }) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("simbench: scenario failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", outcome.line.render());
    if let Err(e) = append_line(&args.out, &outcome.line) {
        eprintln!("simbench: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("simbench: appended trajectory line to {}", args.out.display());

    if args.check {
        let Some(baseline) = baseline else {
            eprintln!(
                "simbench: --check: no committed baseline in {}; recorded this run as \
                 the first line",
                args.out.display()
            );
            return ExitCode::SUCCESS;
        };
        let regressions = compare_runs(&baseline, &outcome.line, &outcome.gates);
        if regressions.is_empty() {
            eprintln!("simbench: --check: no regressions vs committed baseline");
        } else {
            for regression in &regressions {
                eprintln!("simbench: REGRESSION {}: {}", regression.path, regression.detail);
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
