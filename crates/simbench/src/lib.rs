//! `ofscil_simbench` — adversarial workload simulator and learning-quality
//! audit harness with recorded bench trajectories.
//!
//! The serving stack (runtime → wire → router) is benchmarked elsewhere for
//! *speed*; this crate asks the harder questions:
//!
//! * does the stack behave under **adversarial shapes** of load — Zipfian
//!   tenant skew, diurnal swings, bursty learn-storms, drifting class
//!   distributions ([`scenarios`], [`samplers`]),
//! * does it survive **byzantine clients** — malformed/truncated frames,
//!   budget-exhaustion floods, stale-export replay — without serving them
//!   ([`scenarios`]),
//! * and does the actual **few-shot learning quality** survive the serving
//!   path — session accuracy and forgetting curves per the FSCIL protocol,
//!   against the classical baseline heads ([`audit`])?
//!
//! Every scenario replays a deterministic seeded trace and asserts its own
//! invariants inline; the run appends one byte-stable JSON line to
//! `BENCH_simbench.json` ([`record`]), and `--check` gates the fresh run
//! against the last committed line so quality can only move forward.
//!
//! Run it with:
//!
//! ```text
//! cargo run --release -p ofscil_simbench -- --scenario all --seed 7
//! cargo run --release -p ofscil_simbench -- --scenario smoke --seed 7 --check
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod record;
pub mod samplers;
pub mod scenario;
pub mod scenarios;

pub use record::{compare_runs, Gate, Json, Regression};
pub use scenario::{run, scenarios as scenario_registry, select, RunOutcome, SimError};
