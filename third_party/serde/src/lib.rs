//! Offline API-subset stand-in for `serde`.
//!
//! Provides the two marker traits and (behind the `derive` feature) the
//! derive macros that workspace types import via
//! `use serde::{Deserialize, Serialize};`. The workspace never serializes
//! anything at runtime — the derives are forward declarations for a future
//! checkpoint/export format — so marker traits are sufficient. See
//! `third_party/README.md` for how to swap in the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker trait standing in for `serde::Serialize`.
///
/// The real trait's `serialize` method is omitted: no workspace code calls
/// a serializer, and the no-op derive would otherwise have to generate a
/// working implementation for every annotated type.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
///
/// Mirrors the real trait's lifetime parameter so bounds written against
/// the real crate keep compiling.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
