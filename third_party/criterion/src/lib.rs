//! Offline API-subset stand-in for `criterion`.
//!
//! Implements the slice of the Criterion 0.5 API that the
//! `crates/bench/benches/*` files use — [`Criterion::bench_function`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`] — with a
//! real (if simple) wall-clock measurement loop, so `cargo bench` produces
//! meaningful per-iteration timings without a registry. Statistical
//! analysis, plotting, and CLI filtering of the real crate are omitted.
//! See `third_party/README.md` for how to swap in the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under the name the real crate uses.
pub use std::hint::black_box;

/// Entry point handed to every benchmark function, mirroring
/// `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100, warm_up_time: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark (builder-style,
    /// like the real crate).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling begins.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs `routine` under a measurement loop and prints a one-line
    /// summary: median, minimum and maximum time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run the routine until the warm-up budget is spent, and use
        // the observed rate to pick an iteration count per sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        while warm_start.elapsed() < self.warm_up_time {
            routine(&mut bencher);
            warm_iters += bencher.iters;
        }
        let warm_elapsed = warm_start.elapsed();
        let per_iter = warm_elapsed.as_nanos().max(1) / u128::from(warm_iters.max(1));
        // Aim for roughly 10 ms per sample, clamped to a sane iteration range.
        let iters_per_sample = (10_000_000 / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            routine(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "{id:<44} time: [{} {} {}]",
            format_time(min),
            format_time(median),
            format_time(max)
        );
        self
    }
}

/// Measurement handle passed to the benchmark closure, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iteration budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group: expands to a function that runs every target
/// against the configured [`Criterion`]. Supports both the positional and
/// the `name =`/`config =`/`targets =` forms of the real macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_returns() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }
}
