//! Offline no-op stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` as forward
//! declarations of serializability — nothing calls a serializer, and no code
//! takes `T: Serialize` bounds. These derives therefore expand to nothing,
//! which keeps every annotated type compiling without a registry. See
//! `third_party/README.md` for how to swap in the real crate.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
///
/// Accepts (and ignores) `#[serde(...)]` helper attributes so sources
/// written against the real crate parse unchanged.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
///
/// Accepts (and ignores) `#[serde(...)]` helper attributes so sources
/// written against the real crate parse unchanged.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
